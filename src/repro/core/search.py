"""The PolicySmith evolutionary search loop (§3 and Fig. 1 of the paper).

Each round, the Generator proposes a batch of candidate heuristics given the
best-performing heuristics found so far as worked examples.  The batch is
handed to the shared :class:`~repro.core.engine.EvaluationEngine`, which
validates every candidate (with one optional repair attempt driven by the
Checker's feedback), dedups syntactic duplicates, reuses memoized evaluation
results from earlier rounds, and evaluates the remaining unique candidates --
serially or fanned out over a worker pool, depending on the engine
configuration.  After the configured number of rounds, the highest-scoring
valid candidate is the synthesized heuristic for the context.

When ``checkpoint_path`` is set, the search persists its state after every
round (see :class:`~repro.core.archive.SearchCheckpoint`) and ``run()``
transparently resumes from the checkpoint if one exists, so long
multi-context searches survive interruption.

The search narrates itself on an :class:`~repro.core.events.EventBus`
(``RunStarted`` / ``CandidateEvaluated`` / ``RoundCompleted`` /
``CheckpointWritten`` / ``RunFinished``); frontends attach subscribers
(progress printer, JSONL event log) instead of the search printing anything
itself.

The paper's caching methodology (§4.2.1) corresponds to
``SearchConfig(rounds=20, candidates_per_round=25, top_k_parents=2)`` seeded
with LRU and LFU.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.archive import SearchCheckpoint
from repro.core.checker import Checker
from repro.core.context import Context
from repro.core.cost import GPT_4O_MINI_PRICING, CostModel
from repro.core.engine import BatchStats, EngineConfig, EvaluationEngine
from repro.core.evaluator import Evaluator
from repro.core.fidelity import FidelitySchedule
from repro.core.events import (
    CheckpointWritten,
    EventBus,
    RoundCompleted,
    RunFinished,
    RunStarted,
)
from repro.core.generator import Generator
from repro.core.results import Candidate, RoundSummary, ScoredCandidate, SearchResult
from repro.core.template import Template
from repro.dsl.codegen import to_source


@dataclass
class SearchConfig:
    """Tunables of the evolutionary search."""

    rounds: int = 20
    candidates_per_round: int = 25
    top_k_parents: int = 2
    repair_attempts: int = 1
    include_seeds: bool = True
    cost_model: CostModel = GPT_4O_MINI_PRICING

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.candidates_per_round <= 0:
            raise ValueError("candidates_per_round must be positive")
        if self.top_k_parents <= 0:
            raise ValueError("top_k_parents must be positive")
        if self.repair_attempts < 0:
            raise ValueError("repair_attempts cannot be negative")


class EvolutionarySearch:
    """Wires Template, Generator, and the evaluation engine into the search loop."""

    def __init__(
        self,
        template: Template,
        generator: Generator,
        checker: Checker,
        evaluator: Evaluator,
        config: Optional[SearchConfig] = None,
        context: Optional[Context] = None,
        engine: Optional[EvaluationEngine] = None,
        engine_config: Optional[EngineConfig] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        events: Optional[EventBus] = None,
        fidelity: Optional[FidelitySchedule] = None,
    ):
        self.template = template
        self.generator = generator
        self.checker = checker
        self.evaluator = evaluator
        self.config = config or SearchConfig()
        self.context = context
        # `is not None`, not truthiness: an empty caller-supplied bus must be
        # kept so later subscribe() calls observe the run.
        self.events = events if events is not None else EventBus()
        if engine is not None and engine_config is not None:
            raise ValueError(
                "pass either a prebuilt engine or an engine_config, not both "
                "(a prebuilt engine keeps its own configuration)"
            )
        self.engine = engine or EvaluationEngine(
            checker,
            evaluator,
            generator=generator,
            repair_attempts=self.config.repair_attempts,
            config=engine_config,
            events=self.events,
            fidelity=fidelity,
        )
        if engine is not None:
            if fidelity is not None:
                engine.attach_fidelity(fidelity)
            if events is not None:
                # A prebuilt engine joins the caller's event stream.
                engine.events = self.events
            else:
                # One bus for the whole run: adopt the engine's, so candidate
                # events and lifecycle events reach the same subscribers.
                self.events = engine.events
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        self.checkpoint_every = checkpoint_every

    # -- public API -----------------------------------------------------------------

    def run(self) -> SearchResult:
        """Execute the search and return every candidate plus the winner.

        If ``checkpoint_path`` points at an existing checkpoint, the search
        resumes from it: completed rounds are restored verbatim and only the
        remaining rounds execute.
        """
        try:
            return self._run()
        finally:
            # Release worker processes/threads (and their pickled evaluator
            # copies); the engine recreates its pool lazily if reused.
            self.engine.close()

    def _run(self) -> SearchResult:
        start = time.perf_counter()
        population: List[ScoredCandidate] = []
        rounds: List[RoundSummary] = []
        counter = 0
        seed_stats: Dict[str, int] = {
            "lookups": 0,
            "hits": 0,
            "store_lookups": 0,
            "store_hits": 0,
            "rung_evaluations": 0,
            "rung_promotions": 0,
            "rung_eliminations": 0,
        }

        checkpoint = self._load_checkpoint()
        self.events.emit(
            RunStarted(
                template_name=self.template.name,
                context_name=self.context.name if self.context else "",
                rounds=self.config.rounds,
                candidates_per_round=self.config.candidates_per_round,
                resumed_rounds=len(checkpoint.rounds) if checkpoint else 0,
            )
        )
        if checkpoint is not None:
            population = list(checkpoint.population)
            rounds = list(checkpoint.rounds)
            counter = checkpoint.counter
            seed_stats.update(checkpoint.seed_stats)
            self.engine.restore_memo(checkpoint.memo)
            self._restore_generator_state(checkpoint.generator_state)
        elif self.config.include_seeds:
            seeds: List[Candidate] = []
            for program in self.template.seed_programs:
                counter += 1
                seeds.append(
                    Candidate(
                        candidate_id=f"seed-{counter}",
                        source=to_source(program),
                        round_index=0,
                        origin="seed",
                    )
                )
            batch = self.engine.process_batch(seeds)
            population.extend(batch.scored)
            seed_stats["lookups"] = batch.stats.eval_cache_lookups
            seed_stats["hits"] = batch.stats.eval_cache_hits
            seed_stats["store_lookups"] = batch.stats.store_lookups
            seed_stats["store_hits"] = batch.stats.store_hits
            seed_stats["rung_evaluations"] = batch.stats.rung_evaluations
            seed_stats["rung_promotions"] = batch.stats.rung_promotions
            seed_stats["rung_eliminations"] = batch.stats.rung_eliminations

        for round_index in range(len(rounds) + 1, self.config.rounds + 1):
            summary = self._run_round(round_index, population, counter)
            counter += summary.generated
            rounds.append(summary)
            self.events.emit(
                RoundCompleted(
                    round_index=summary.round_index,
                    generated=summary.generated,
                    evaluated=summary.evaluated,
                    best_score=summary.best_score,
                    best_overall_score=summary.best_overall_score,
                    eval_cache_lookups=summary.eval_cache_lookups,
                    eval_cache_hits=summary.eval_cache_hits,
                    store_lookups=summary.store_lookups,
                    store_hits=summary.store_hits,
                    scenario_best=dict(summary.scenario_best),
                )
            )
            if self.checkpoint_path and (
                round_index % self.checkpoint_every == 0
                or round_index == self.config.rounds
            ):
                self._save_checkpoint(population, rounds, counter, seed_stats)
                self.events.emit(
                    CheckpointWritten(
                        path=str(self.checkpoint_path),
                        completed_rounds=len(rounds),
                    )
                )

        best = self._best_of(population)
        result = SearchResult(
            best=best,
            candidates=population,
            rounds=rounds,
            context_name=self.context.name if self.context else "",
            template_name=self.template.name,
            total_candidates=len(population),
            wall_time_s=time.perf_counter() - start,
            eval_cache_lookups=seed_stats["lookups"]
            + sum(r.eval_cache_lookups for r in rounds),
            eval_cache_hits=seed_stats["hits"]
            + sum(r.eval_cache_hits for r in rounds),
            store_lookups=seed_stats.get("store_lookups", 0)
            + sum(r.store_lookups for r in rounds),
            store_hits=seed_stats.get("store_hits", 0)
            + sum(r.store_hits for r in rounds),
            rung_evaluations=seed_stats.get("rung_evaluations", 0)
            + sum(r.rung_evaluations for r in rounds),
            rung_promotions=seed_stats.get("rung_promotions", 0)
            + sum(r.rung_promotions for r in rounds),
            rung_eliminations=seed_stats.get("rung_eliminations", 0)
            + sum(r.rung_eliminations for r in rounds),
        )
        usage = getattr(self.generator, "usage", None)
        if usage is not None:
            result.prompt_tokens = usage.prompt_tokens
            result.completion_tokens = usage.completion_tokens
            result.estimated_cost_usd = self.config.cost_model.cost(
                usage.prompt_tokens, usage.completion_tokens
            )
        self.events.emit(
            RunFinished(
                total_candidates=result.total_candidates,
                valid_candidates=len(result.valid_candidates()),
                rounds=len(rounds),
                best_candidate_id=(
                    best.candidate.candidate_id if best is not None else None
                ),
                best_score=best.score if best is not None else float("-inf"),
                wall_time_s=result.wall_time_s,
            )
        )
        return result

    # -- internals -------------------------------------------------------------------

    def _parents_of(self, population: List[ScoredCandidate]) -> List[ScoredCandidate]:
        """The top-k valid candidates across *all* previous rounds (§4.2.1).

        Only full-fidelity scores are comparable, so candidates the fidelity
        ladder screened out at a sub-full rung are never parents -- a cheap
        rung score must not steer the generator.
        """
        valid = [c for c in population if c.valid and c.full_fidelity]
        valid.sort(key=lambda c: c.score, reverse=True)
        return valid[: self.config.top_k_parents]

    def _best_of(self, population: List[ScoredCandidate]) -> Optional[ScoredCandidate]:
        valid = [c for c in population if c.valid and c.full_fidelity]
        if not valid:
            return None
        return max(valid, key=lambda c: c.score)

    def _run_round(
        self,
        round_index: int,
        population: List[ScoredCandidate],
        id_offset: int,
    ) -> RoundSummary:
        summary = RoundSummary(round_index=round_index)
        parents = self._parents_of(population)
        parent_examples = [(c.source, c.score) for c in parents]
        # Lineage records name the score-sorted parents actually shown to the
        # generator, not the first valid candidates in insertion order.
        parent_ids = [c.candidate.candidate_id for c in parents]
        sources = self.generator.generate(parent_examples, self.config.candidates_per_round)
        summary.generated = len(sources)

        candidates = [
            Candidate(
                candidate_id=f"r{round_index}-c{id_offset + offset}",
                source=source,
                round_index=round_index,
                parent_ids=list(parent_ids),
            )
            for offset, source in enumerate(sources, start=1)
        ]
        batch = self.engine.process_batch(candidates)
        self._fold_stats(summary, batch.stats)
        for scored in batch.scored:
            if scored.evaluation is not None:
                summary.evaluated += 1
                # Round bests only track full-fidelity scores: a screened-out
                # candidate's rung score is not comparable to the rest.
                if scored.valid and scored.full_fidelity:
                    if scored.score > summary.best_score:
                        summary.best_score = scored.score
                    for name, score in scored.evaluation.scenario_scores.items():
                        if score > summary.scenario_best.get(name, float("-inf")):
                            summary.scenario_best[name] = score
            population.append(scored)

        best = self._best_of(population)
        summary.best_overall_score = best.score if best else float("-inf")
        return summary

    @staticmethod
    def _fold_stats(summary: RoundSummary, stats: BatchStats) -> None:
        summary.passed_check = stats.passed_check
        summary.passed_after_repair = stats.passed_after_repair
        for code, count in stats.failure_codes.items():
            summary.failure_codes[code] = summary.failure_codes.get(code, 0) + count
        summary.eval_cache_lookups = stats.eval_cache_lookups
        summary.eval_cache_hits = stats.eval_cache_hits
        summary.unique_evaluations = stats.unique_evaluations
        summary.store_lookups = stats.store_lookups
        summary.store_hits = stats.store_hits
        summary.rung_evaluations = stats.rung_evaluations
        summary.rung_promotions = stats.rung_promotions
        summary.rung_eliminations = stats.rung_eliminations

    # -- checkpointing ---------------------------------------------------------------

    def _load_checkpoint(self) -> Optional[SearchCheckpoint]:
        if self.checkpoint_path is None or not self.checkpoint_path.exists():
            return None
        checkpoint = SearchCheckpoint.load(self.checkpoint_path)
        if checkpoint.template_name and checkpoint.template_name != self.template.name:
            raise ValueError(
                f"checkpoint {self.checkpoint_path} was written for template "
                f"{checkpoint.template_name!r}, not {self.template.name!r}"
            )
        context_name = self.context.name if self.context else ""
        if checkpoint.context_name and checkpoint.context_name != context_name:
            raise ValueError(
                f"checkpoint {self.checkpoint_path} was written for context "
                f"{checkpoint.context_name!r}, not {context_name!r}; "
                "use a separate checkpoint path per context"
            )
        context_params = list(self.context.parameters) if self.context else []
        if checkpoint.context_parameters and [
            list(item) for item in context_params
        ] != checkpoint.context_parameters:
            raise ValueError(
                f"checkpoint {self.checkpoint_path} was written with context "
                f"parameters {checkpoint.context_parameters}, not "
                f"{context_params}; its memoized scores are not comparable"
            )
        return checkpoint

    def _save_checkpoint(
        self,
        population: List[ScoredCandidate],
        rounds: List[RoundSummary],
        counter: int,
        seed_stats: Dict[str, int],
    ) -> None:
        checkpoint = SearchCheckpoint(
            template_name=self.template.name,
            context_name=self.context.name if self.context else "",
            context_parameters=[
                list(item) for item in (self.context.parameters if self.context else [])
            ],
            completed_rounds=len(rounds),
            counter=counter,
            population=population,
            rounds=rounds,
            memo=self.engine.memo_snapshot(),
            generator_state=self._capture_generator_state(),
            seed_stats=dict(seed_stats),
        )
        checkpoint.save(self.checkpoint_path)

    def _capture_generator_state(self) -> Optional[Dict[str, Any]]:
        client = getattr(self.generator, "client", None)
        state: Dict[str, Any] = {}
        if client is not None and hasattr(client, "get_state"):
            state["client"] = client.get_state()
        usage = getattr(self.generator, "usage", None)
        if usage is not None:
            state["usage"] = {
                "prompt_tokens": usage.prompt_tokens,
                "completion_tokens": usage.completion_tokens,
                "calls": usage.calls,
            }
        return state or None

    def _restore_generator_state(self, state: Optional[Dict[str, Any]]) -> None:
        if not state:
            return
        client = getattr(self.generator, "client", None)
        if "client" in state and client is not None and hasattr(client, "set_state"):
            client.set_state(state["client"])
        usage = getattr(self.generator, "usage", None)
        if "usage" in state and usage is not None:
            usage.prompt_tokens = int(state["usage"].get("prompt_tokens", 0))
            usage.completion_tokens = int(state["usage"].get("completion_tokens", 0))
            usage.calls = int(state["usage"].get("calls", 0))
