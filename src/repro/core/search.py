"""The PolicySmith evolutionary search loop (§3 and Fig. 1 of the paper).

Each round, the Generator proposes a batch of candidate heuristics given the
best-performing heuristics found so far as worked examples.  Every candidate
is validated by the Checker (with one optional repair attempt driven by the
Checker's feedback), evaluated by the context-specific Evaluator, and added
to the population.  After the configured number of rounds, the
highest-scoring valid candidate is the synthesized heuristic for the
context.

The paper's caching methodology (§4.2.1) corresponds to
``SearchConfig(rounds=20, candidates_per_round=25, top_k_parents=2)`` seeded
with LRU and LFU.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.checker import Checker
from repro.core.context import Context
from repro.core.cost import GPT_4O_MINI_PRICING, CostModel
from repro.core.evaluator import Evaluator
from repro.core.generator import Generator
from repro.core.results import Candidate, RoundSummary, ScoredCandidate, SearchResult
from repro.core.template import Template
from repro.dsl.codegen import to_source


@dataclass
class SearchConfig:
    """Tunables of the evolutionary search."""

    rounds: int = 20
    candidates_per_round: int = 25
    top_k_parents: int = 2
    repair_attempts: int = 1
    include_seeds: bool = True
    cost_model: CostModel = GPT_4O_MINI_PRICING

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.candidates_per_round <= 0:
            raise ValueError("candidates_per_round must be positive")
        if self.top_k_parents <= 0:
            raise ValueError("top_k_parents must be positive")
        if self.repair_attempts < 0:
            raise ValueError("repair_attempts cannot be negative")


class EvolutionarySearch:
    """Wires Template, Generator, Checker and Evaluator into the search loop."""

    def __init__(
        self,
        template: Template,
        generator: Generator,
        checker: Checker,
        evaluator: Evaluator,
        config: Optional[SearchConfig] = None,
        context: Optional[Context] = None,
    ):
        self.template = template
        self.generator = generator
        self.checker = checker
        self.evaluator = evaluator
        self.config = config or SearchConfig()
        self.context = context

    # -- public API -----------------------------------------------------------------

    def run(self) -> SearchResult:
        """Execute the search and return every candidate plus the winner."""
        start = time.perf_counter()
        population: List[ScoredCandidate] = []
        rounds: List[RoundSummary] = []
        counter = 0

        if self.config.include_seeds:
            for program in self.template.seed_programs:
                counter += 1
                candidate = Candidate(
                    candidate_id=f"seed-{counter}",
                    source=to_source(program),
                    round_index=0,
                    origin="seed",
                )
                population.append(self._check_and_evaluate(candidate))

        for round_index in range(1, self.config.rounds + 1):
            summary = self._run_round(round_index, population, counter)
            counter += summary.generated
            rounds.append(summary)

        best = self._best_of(population)
        result = SearchResult(
            best=best,
            candidates=population,
            rounds=rounds,
            context_name=self.context.name if self.context else "",
            template_name=self.template.name,
            total_candidates=len(population),
            wall_time_s=time.perf_counter() - start,
        )
        usage = getattr(self.generator, "usage", None)
        if usage is not None:
            result.prompt_tokens = usage.prompt_tokens
            result.completion_tokens = usage.completion_tokens
            result.estimated_cost_usd = self.config.cost_model.cost(
                usage.prompt_tokens, usage.completion_tokens
            )
        return result

    # -- internals -------------------------------------------------------------------

    def _parents_of(self, population: List[ScoredCandidate]) -> List[tuple]:
        """The top-k valid candidates across *all* previous rounds (§4.2.1)."""
        valid = [c for c in population if c.valid]
        valid.sort(key=lambda c: c.score, reverse=True)
        return [(c.source, c.score) for c in valid[: self.config.top_k_parents]]

    def _best_of(self, population: List[ScoredCandidate]) -> Optional[ScoredCandidate]:
        valid = [c for c in population if c.valid]
        if not valid:
            return None
        return max(valid, key=lambda c: c.score)

    def _run_round(
        self,
        round_index: int,
        population: List[ScoredCandidate],
        id_offset: int,
    ) -> RoundSummary:
        summary = RoundSummary(round_index=round_index)
        parents = self._parents_of(population)
        parent_ids = [c.candidate.candidate_id for c in population if c.valid][
            : self.config.top_k_parents
        ]
        sources = self.generator.generate(parents, self.config.candidates_per_round)
        summary.generated = len(sources)

        for offset, source in enumerate(sources, start=1):
            candidate = Candidate(
                candidate_id=f"r{round_index}-c{id_offset + offset}",
                source=source,
                round_index=round_index,
                parent_ids=list(parent_ids),
            )
            scored = self._check_and_evaluate(candidate)
            if scored.check_ok and not scored.candidate.repaired:
                summary.passed_check += 1
            elif scored.check_ok and scored.candidate.repaired:
                summary.passed_after_repair += 1
            else:
                for issue in scored.check_issues:
                    summary.failure_codes[issue.code] = (
                        summary.failure_codes.get(issue.code, 0) + 1
                    )
            if scored.evaluation is not None:
                summary.evaluated += 1
                if scored.valid and scored.score > summary.best_score:
                    summary.best_score = scored.score
            population.append(scored)

        best = self._best_of(population)
        summary.best_overall_score = best.score if best else float("-inf")
        return summary

    def _check_and_evaluate(self, candidate: Candidate) -> ScoredCandidate:
        check = self.checker.check(candidate.source)
        issues = list(check.issues)
        if not check.ok and self.config.repair_attempts > 0:
            repaired_source = None
            for _attempt in range(self.config.repair_attempts):
                repaired_source = self.generator.repair(candidate.source, check.feedback)
                if repaired_source is None:
                    break
                recheck = self.checker.check(repaired_source)
                if recheck.ok:
                    candidate.source = repaired_source
                    candidate.repaired = True
                    candidate.origin = "generated"
                    check = recheck
                    break
                check = recheck
                issues.extend(recheck.issues)
        scored = ScoredCandidate(
            candidate=candidate,
            program=check.program if check.ok else None,
            check_ok=check.ok,
            check_issues=issues if not check.ok else [],
        )
        if check.ok and check.program is not None:
            scored.evaluation = self.evaluator.evaluate(check.program)
        return scored
