"""Typed run events: the streaming observability channel of a search run.

Every run of :class:`~repro.core.search.EvolutionarySearch` (and the
:class:`~repro.core.engine.EvaluationEngine` beneath it) narrates itself as a
stream of typed events -- :class:`RunStarted`, :class:`CandidateEvaluated`,
:class:`RoundCompleted`, :class:`CheckpointWritten`, :class:`RunFinished` --
published on an :class:`EventBus` to any number of pluggable subscribers.
Frontends attach what they need: the CLI attaches a :class:`ProgressPrinter`
for live progress lines, the artifact store a :class:`JsonlEventLog` so the
whole trajectory is replayable offline, and tests attach plain lists.

Emission is observation only: subscribers receive events after the fact and
cannot perturb the search trajectory, so a run with subscribers is
byte-identical to a run without them.
"""

from __future__ import annotations

import json
import math
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, ClassVar, Dict, IO, List, Optional, Union


def encode_non_finite(value):
    """Non-finite floats as strings (json.dumps would emit non-RFC Infinity).

    The single definition of the convention: the checkpoint/artifact
    serializers in :mod:`repro.core.archive` delegate here, so events.jsonl
    and result.json can never disagree on the encoding of the same value.
    """
    if isinstance(value, float) and (math.isinf(value) or math.isnan(value)):
        return str(value)
    return value


def _json_safe(value):
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return encode_non_finite(value)


@dataclass(frozen=True)
class RunEvent:
    """Base class of every event on the bus."""

    kind: ClassVar[str] = "event"

    def to_dict(self) -> dict:
        """JSON-serializable form, ``{"event": kind, ...fields}``."""
        payload = {"event": self.kind}
        payload.update(_json_safe(asdict(self)))
        return payload


@dataclass(frozen=True)
class RunStarted(RunEvent):
    """The search is about to execute (emitted after any checkpoint restore)."""

    kind: ClassVar[str] = "run_started"

    template_name: str = ""
    context_name: str = ""
    rounds: int = 0
    candidates_per_round: int = 0
    #: Rounds restored from a checkpoint (0 for a fresh run).
    resumed_rounds: int = 0


@dataclass(frozen=True)
class GenerationStarted(RunEvent):
    """The round's candidate generation is about to run.

    Emitted before the first client call of the round (serial and pipelined
    paths alike), so a frontend can show generation progress instead of
    going silent between round summaries.
    """

    kind: ClassVar[str] = "generation_started"

    round_index: int = 0
    #: Candidates the round will ask the client for.
    requested: int = 0
    #: Parent examples embedded in the prompt (0 in the first round).
    parents: int = 0


@dataclass(frozen=True)
class GenerationCompleted(RunEvent):
    """The round's candidate generation finished.

    ``generated`` can fall short of ``requested`` when completions carry no
    code block; ``chunks`` is the number of client calls the round streamed
    the prompt through (1 on the serial path).  ``wall_time_s`` is telemetry
    only -- it never enters result.json.
    """

    kind: ClassVar[str] = "generation_completed"

    round_index: int = 0
    requested: int = 0
    generated: int = 0
    chunks: int = 1
    wall_time_s: float = 0.0


@dataclass(frozen=True)
class CandidateEvaluated(RunEvent):
    """One candidate received an evaluation result (fresh or cached)."""

    kind: ClassVar[str] = "candidate_evaluated"

    candidate_id: str = ""
    round_index: int = 0
    origin: str = "generated"
    valid: bool = False
    score: float = float("-inf")
    #: True when the result came from a cache tier (memory or disk) instead
    #: of a fresh simulation.
    cached: bool = False
    #: Which tier served the result: ``"memory"`` (dedup/memo), ``"disk"``
    #: (the persistent evaluation store), ``"fresh"`` (evaluated now) or
    #: ``"screened"`` (sentinel from the static screener, never evaluated).
    cache_tier: str = "fresh"
    #: Per-scenario score breakdown (empty for single-scenario evaluation).
    scenario_scores: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class CandidateScreened(RunEvent):
    """A candidate was rejected by the static screener (rung "-1").

    The interval abstract interpreter proved the candidate degenerate --
    ``reason`` is the rule that fired (``"constant"``,
    ``"input-independent"``, ``"pinned-min"`` / ``"pinned-max"``) and
    ``detail`` the human-readable evidence.  Screened candidates receive a
    sentinel failure result at zero evaluator cost; they never reach the
    memo, the store or an executor.
    """

    kind: ClassVar[str] = "candidate_screened"

    candidate_id: str = ""
    round_index: int = 0
    reason: str = ""
    detail: str = ""


@dataclass(frozen=True)
class CandidatePromoted(RunEvent):
    """A candidate survived one screening rung of the fidelity ladder.

    ``fraction`` is the rung's fidelity (a sub-1.0 budget fraction);
    ``score`` the rung score the promotion decision ranked on -- telemetry
    only, never consumed by ranking or selection.  ``kept`` / ``pool`` sizes
    the decision (top ``kept`` of ``pool`` survived).
    """

    kind: ClassVar[str] = "candidate_promoted"

    candidate_id: str = ""
    round_index: int = 0
    rung: int = 0
    fraction: float = 1.0
    score: float = float("-inf")
    kept: int = 0
    pool: int = 0


@dataclass(frozen=True)
class CandidateEliminated(RunEvent):
    """A candidate was screened out at one rung of the fidelity ladder.

    In ``screen`` mode the candidate's recorded evaluation stays at this
    rung's fidelity; in ``shadow`` mode the event is telemetry only and the
    candidate still receives a full-fidelity evaluation.
    """

    kind: ClassVar[str] = "candidate_eliminated"

    candidate_id: str = ""
    round_index: int = 0
    rung: int = 0
    fraction: float = 1.0
    score: float = float("-inf")
    kept: int = 0
    pool: int = 0


@dataclass(frozen=True)
class RoundCompleted(RunEvent):
    """One search round finished (mirrors the round's RoundSummary)."""

    kind: ClassVar[str] = "round_completed"

    round_index: int = 0
    generated: int = 0
    evaluated: int = 0
    best_score: float = float("-inf")
    best_overall_score: float = float("-inf")
    eval_cache_lookups: int = 0
    eval_cache_hits: int = 0
    #: Persistent-store traffic this round (0/0 when no store is attached).
    store_lookups: int = 0
    store_hits: int = 0
    #: Best per-scenario score among this round's valid candidates (empty
    #: for single-scenario runs).
    scenario_best: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class WorkerJoined(RunEvent):
    """A distributed-queue worker registered with the run's work queue.

    Emitted by the coordinator the first time it observes a worker's
    registration file -- coordinator-spawned and externally-launched
    (``python -m repro worker``) workers alike.
    """

    kind: ClassVar[str] = "worker_joined"

    worker_id: str = ""
    host: str = ""
    pid: int = 0


@dataclass(frozen=True)
class TaskDispatched(RunEvent):
    """One evaluation unit was enqueued on the distributed work queue.

    ``scenario`` is ``None`` for a whole-candidate unit; ``program_key`` is
    the candidate's canonical SHA-1 (the same key the memo/store tiers use).
    Telemetry only: dispatch order equals submission order by construction.
    """

    kind: ClassVar[str] = "task_dispatched"

    task_id: str = ""
    program_key: str = ""
    scenario: Optional[int] = None


@dataclass(frozen=True)
class TaskReclaimed(RunEvent):
    """A dispatched task's lease expired and the task went back to pending.

    ``worker_id`` is the presumed-dead holder (empty when the lease carried
    no claim yet); ``attempt`` counts reclaims of this task so far.  The
    task is re-claimed by a surviving worker -- or, past the coordinator's
    retry budget, evaluated inline -- so a crash costs latency, never
    results.
    """

    kind: ClassVar[str] = "task_reclaimed"

    task_id: str = ""
    worker_id: str = ""
    attempt: int = 1


@dataclass(frozen=True)
class CheckpointWritten(RunEvent):
    """Search state was persisted to disk."""

    kind: ClassVar[str] = "checkpoint_written"

    path: str = ""
    completed_rounds: int = 0


@dataclass(frozen=True)
class RunFinished(RunEvent):
    """The search completed and produced its SearchResult."""

    kind: ClassVar[str] = "run_finished"

    total_candidates: int = 0
    valid_candidates: int = 0
    rounds: int = 0
    best_candidate_id: Optional[str] = None
    best_score: float = float("-inf")
    wall_time_s: float = 0.0


#: A subscriber is any callable taking one event.
Subscriber = Callable[[RunEvent], None]


class EventBus:
    """Fans events out to subscribers, in subscription order.

    An empty bus is free to emit on (``if bus:`` guards the hot path), so the
    search can always carry one without a performance cost.
    """

    def __init__(self, subscribers: Optional[List[Subscriber]] = None):
        self._subscribers: List[Subscriber] = list(subscribers or [])

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.remove(subscriber)

    def emit(self, event: RunEvent) -> None:
        """Deliver ``event`` to every subscriber.

        A failing subscriber is dropped (with one stderr warning) instead of
        aborting the run: observation must never cost the search its work.
        """
        broken = None
        for subscriber in self._subscribers:
            try:
                subscriber(event)
            except Exception as exc:  # noqa: BLE001 - observer boundary
                if broken is None:
                    broken = []
                broken.append(subscriber)
                try:
                    print(
                        f"warning: event subscriber {subscriber!r} failed "
                        f"({type(exc).__name__}: {exc}); unsubscribed",
                        file=sys.stderr,
                    )
                except Exception:  # stderr itself may be the broken pipe
                    pass
        if broken:
            for subscriber in broken:
                self._subscribers.remove(subscriber)

    def __bool__(self) -> bool:
        return bool(self._subscribers)

    def __len__(self) -> int:
        return len(self._subscribers)


class ProgressPrinter:
    """Human-readable progress lines, one per lifecycle event.

    Candidate-level events are summarised by the round lines unless
    ``verbose`` is set.  Writes to ``stream`` (stderr by default in the CLI,
    so report output on stdout stays machine-comparable).
    """

    def __init__(self, stream: IO[str], verbose: bool = False):
        self.stream = stream
        self.verbose = verbose
        self._total_rounds = 0

    def _line(self, text: str) -> None:
        self.stream.write(text + "\n")

    def __call__(self, event: RunEvent) -> None:
        if isinstance(event, RunStarted):
            self._total_rounds = event.rounds
            resumed = (
                f", resumed after round {event.resumed_rounds}"
                if event.resumed_rounds
                else ""
            )
            self._line(
                f"run started: {event.template_name} on {event.context_name or '<no context>'} "
                f"({event.rounds} rounds x {event.candidates_per_round} candidates{resumed})"
            )
        elif isinstance(event, GenerationStarted):
            parents = (
                f" from {event.parents} parent(s)" if event.parents else ""
            )
            self._line(
                f"round {event.round_index}/{self._total_rounds}: "
                f"generating {event.requested} candidates{parents}..."
            )
        elif isinstance(event, GenerationCompleted):
            if self.verbose:
                chunks = f" in {event.chunks} chunk(s)" if event.chunks > 1 else ""
                self._line(
                    f"  generated {event.generated}/{event.requested}{chunks} "
                    f"({event.wall_time_s:.1f}s)"
                )
        elif isinstance(event, CandidateEvaluated):
            if self.verbose:
                self._line(
                    f"  {event.candidate_id}: score {event.score:.4f} "
                    f"({'valid' if event.valid else 'invalid'}, {event.cache_tier})"
                )
        elif isinstance(event, CandidateScreened):
            if self.verbose:
                self._line(
                    f"  {event.candidate_id}: screened ({event.reason}: {event.detail})"
                )
        elif isinstance(event, (CandidatePromoted, CandidateEliminated)):
            if self.verbose:
                verb = (
                    "promoted" if isinstance(event, CandidatePromoted) else "eliminated"
                )
                self._line(
                    f"  {event.candidate_id}: {verb} at rung {event.rung} "
                    f"({event.fraction:.0%} fidelity, score {event.score:.4f}, "
                    f"kept {event.kept}/{event.pool})"
                )
        elif isinstance(event, WorkerJoined):
            self._line(
                f"  worker {event.worker_id} joined ({event.host}, pid {event.pid})"
            )
        elif isinstance(event, TaskReclaimed):
            self._line(
                f"  task {event.task_id} reclaimed from {event.worker_id or '<unclaimed>'} "
                f"(attempt {event.attempt})"
            )
        elif isinstance(event, TaskDispatched):
            if self.verbose:
                scenario = (
                    f" scenario {event.scenario}" if event.scenario is not None else ""
                )
                self._line(f"  dispatched {event.task_id}{scenario}")
        elif isinstance(event, RoundCompleted):
            disk = (
                f", disk {event.store_hits}/{event.store_lookups}"
                if event.store_lookups
                else ""
            )
            self._line(
                f"round {event.round_index}/{self._total_rounds}: "
                f"evaluated {event.evaluated}/{event.generated}, "
                f"best {event.best_score:.4f}, best so far {event.best_overall_score:.4f} "
                f"(cache {event.eval_cache_hits}/{event.eval_cache_lookups}{disk})"
            )
        elif isinstance(event, CheckpointWritten):
            self._line(
                f"checkpoint after round {event.completed_rounds} -> {event.path}"
            )
        elif isinstance(event, RunFinished):
            self._line(
                f"run finished: {event.valid_candidates}/{event.total_candidates} valid, "
                f"best {event.best_score:.4f} ({event.best_candidate_id}) "
                f"in {event.wall_time_s:.1f}s"
            )


class JsonlEventLog:
    """Appends every event as one JSON line; the replayable run transcript.

    The file is truncated on open so a rerun (or a resume) of the same run
    directory yields a self-consistent log.  Lines are flushed eagerly so a
    crashed run still leaves a usable prefix.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh: Optional[IO[str]] = self.path.open("w", encoding="utf-8")

    def __call__(self, event: RunEvent) -> None:
        if self._fh is None:
            raise ValueError(f"event log {self.path} is closed")
        self._fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_event_log(path: Union[str, Path]) -> List[Dict]:
    """Parse a JSONL file (events.jsonl, rounds.jsonl) into dictionaries."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    return [json.loads(line) for line in lines if line.strip()]
