"""Cost accounting for search runs (§4.2.6 of the paper).

The paper reports, for the heuristic-A search: 5.5 CPU-hours of candidate
evaluation, 800k input tokens, 300k output tokens, and roughly $7 of OpenAI
API spend across the eight runs.  This module provides the price sheet and
the aggregation used by :mod:`repro.experiments.cost_accounting` to produce
the same row for our runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class CostModel:
    """Per-token pricing of an LLM API (USD per million tokens)."""

    model: str
    usd_per_million_input: float
    usd_per_million_output: float

    def cost(self, prompt_tokens: int, completion_tokens: int) -> float:
        return (
            prompt_tokens * self.usd_per_million_input
            + completion_tokens * self.usd_per_million_output
        ) / 1_000_000.0


#: GPT-4o-mini public pricing at the time of the paper ($0.15 / $0.60 per 1M).
GPT_4O_MINI_PRICING = CostModel(
    model="gpt-4o-mini",
    usd_per_million_input=0.15,
    usd_per_million_output=0.60,
)


@dataclass
class SearchCostReport:
    """Aggregated cost of one or more search runs."""

    runs: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    evaluation_cpu_seconds: float = 0.0
    cost_model: CostModel = GPT_4O_MINI_PRICING
    per_run: List[Dict[str, float]] = field(default_factory=list)

    def add_run(
        self,
        name: str,
        prompt_tokens: int,
        completion_tokens: int,
        evaluation_cpu_seconds: float,
    ) -> None:
        self.runs += 1
        self.prompt_tokens += prompt_tokens
        self.completion_tokens += completion_tokens
        self.evaluation_cpu_seconds += evaluation_cpu_seconds
        self.per_run.append(
            {
                "name": name,
                "prompt_tokens": prompt_tokens,
                "completion_tokens": completion_tokens,
                "evaluation_cpu_seconds": evaluation_cpu_seconds,
                "cost_usd": self.cost_model.cost(prompt_tokens, completion_tokens),
            }
        )

    @property
    def total_cost_usd(self) -> float:
        return self.cost_model.cost(self.prompt_tokens, self.completion_tokens)

    @property
    def evaluation_cpu_hours(self) -> float:
        return self.evaluation_cpu_seconds / 3600.0

    def summary(self) -> Dict[str, float]:
        return {
            "runs": self.runs,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "evaluation_cpu_hours": self.evaluation_cpu_hours,
            "total_cost_usd": self.total_cost_usd,
        }
