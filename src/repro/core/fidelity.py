"""Multi-fidelity evaluation schedules: successive halving over a budget ladder.

Most candidates a search round produces are eliminated immediately -- they
never become parents and never become the winner -- yet the engine pays the
full evaluation budget (the whole trace, the whole netsim run) for every one
of them.  A :class:`FidelitySchedule` describes a *budget ladder*: an
ascending list of fidelity fractions (e.g. 10% -> 30% -> 100% of the
workload), plus a successive-halving promotion rule.  The
:class:`~repro.core.engine.EvaluationEngine` evaluates a batch's fresh
candidates at the cheapest rung, keeps the top ``1/eta`` fraction (never
fewer than ``min_keep``), promotes the survivors one rung up, and repeats
until the surviving pool runs at full fidelity.

Two modes:

``screen`` (the default)
    Real elimination: candidates dropped at a low rung keep that rung's
    (cheap) evaluation as their recorded result, marked with
    ``fidelity < 1.0``.  Ranking and selection -- parents, the final winner,
    per-round bests -- only ever consume full-fidelity scores, so a screened
    candidate can never steer the search with a low-fidelity number.  This
    is the fast path; its final quality equals the full-fidelity run
    whenever the ladder's keep policy retains the true top candidates (which
    ``shadow`` mode lets you validate).

``shadow``
    Audit-only: the ladder runs -- rung evaluations, promotion/elimination
    telemetry and events all happen -- but *every* candidate is still
    evaluated at full fidelity and nothing is eliminated.  Because rung
    scores are consumed by nothing except telemetry, a fixed-seed shadow run
    produces byte-identical ``result.json`` to a ladder-disabled run; use it
    to measure a ladder's rank fidelity before trusting ``screen`` mode.

Rung evaluations are memoized and persisted like any other evaluation, but
under a *fidelity-qualified* content address (see
:func:`~repro.core.store.fidelity_eval_key`), so partial scores can never
collide with -- or masquerade as -- full-fidelity ones.
"""

from __future__ import annotations

import math
from collections import abc
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple, Union

#: The ladder used when a spec or CLI flag enables fidelity scheduling
#: without naming rungs.
DEFAULT_RUNGS = (0.1, 0.3, 1.0)

FIDELITY_MODES = ("screen", "shadow")


@dataclass(frozen=True)
class FidelitySchedule:
    """A budget ladder plus the successive-halving promotion rule.

    ``rungs`` are strictly ascending fidelity fractions in ``(0, 1]``; the
    last rung must be ``1.0`` (final scores are always full-fidelity).
    ``eta`` is the halving rate: each rung keeps the top ``ceil(n / eta)``
    of its pool.  ``min_keep`` floors the survivor count so a ladder can
    never starve the search of parents (set it to at least the search's
    ``top_k_parents``).  The schedule round-trips through JSON (a bare rung
    list or ``{"rungs": ..., "eta": ..., ...}``) so a
    :class:`~repro.core.spec.RunSpec` can declare it.
    """

    rungs: Tuple[float, ...] = DEFAULT_RUNGS
    eta: float = 3.0
    min_keep: int = 2
    mode: str = "screen"

    def __post_init__(self) -> None:
        if not self.rungs:
            raise ValueError("a FidelitySchedule needs at least one rung")
        for fraction in self.rungs:
            if not 0 < fraction <= 1:
                raise ValueError(
                    f"rung fractions must be in (0, 1], got {fraction!r}"
                )
        if list(self.rungs) != sorted(set(self.rungs)):
            raise ValueError(
                f"rungs must be strictly ascending, got {list(self.rungs)}"
            )
        if self.rungs[-1] != 1.0:
            raise ValueError(
                "the final rung must be 1.0 (final scores are always "
                f"full-fidelity), got {list(self.rungs)}"
            )
        if self.eta <= 1:
            raise ValueError("eta must be greater than 1")
        if self.min_keep < 1:
            raise ValueError("min_keep must be at least 1")
        if self.mode not in FIDELITY_MODES:
            raise ValueError(
                f"unknown fidelity mode {self.mode!r}; "
                f"available: {list(FIDELITY_MODES)}"
            )

    # -- construction --------------------------------------------------------------

    @classmethod
    def create(
        cls,
        rungs: Sequence[float] = DEFAULT_RUNGS,
        eta: float = 3.0,
        min_keep: int = 2,
        mode: str = "screen",
    ) -> "FidelitySchedule":
        # Everything here may come from user-authored JSON (a spec file or a
        # CLI flag), so shape mistakes must be ValueErrors the frontends
        # already surface, never bare TypeErrors.
        if isinstance(rungs, (str, bytes)) or not isinstance(rungs, abc.Sequence):
            raise ValueError(
                f"rungs must be a list of fidelity fractions, got {rungs!r}"
            )
        try:
            return cls(
                rungs=tuple(float(f) for f in rungs),
                eta=float(eta),
                min_keep=int(min_keep),
                mode=mode,
            )
        except TypeError as exc:
            raise ValueError(f"malformed fidelity schedule: {exc}") from exc

    @classmethod
    def from_ref(
        cls, ref: Union[None, "FidelitySchedule", Sequence[float], Mapping]
    ) -> Optional["FidelitySchedule"]:
        """Build a schedule from its declarative reference.

        ``None`` stays ``None`` (fidelity scheduling disabled); a list is a
        rung ladder with default promotion parameters; a mapping may set any
        of ``rungs`` / ``eta`` / ``min_keep`` / ``mode``.
        """
        if ref is None:
            return None
        if isinstance(ref, FidelitySchedule):
            return ref
        if isinstance(ref, Mapping):
            extra = set(ref) - {"rungs", "eta", "min_keep", "mode"}
            if extra:
                raise ValueError(
                    f"unknown fidelity key(s) {sorted(extra)}; "
                    "allowed: ['eta', 'min_keep', 'mode', 'rungs']"
                )
            return cls.create(
                rungs=ref.get("rungs", DEFAULT_RUNGS),
                eta=ref.get("eta", 3.0),
                min_keep=ref.get("min_keep", 2),
                mode=ref.get("mode", "screen"),
            )
        if isinstance(ref, (list, tuple)):
            return cls.create(rungs=ref)
        # A ref usually arrives from JSON (spec file / CLI flag): a wrong
        # shape is bad *data*, so it raises the ValueError the frontends map
        # to a clean exit-2 message.
        raise ValueError(
            f"cannot build a FidelitySchedule from {type(ref).__name__}; "
            "use a rung list or a {'rungs': ..., 'eta': ..., 'min_keep': ..., "
            "'mode': ...} mapping"
        )

    def to_ref(self) -> dict:
        """The declarative form stored in specs (inverse of :meth:`from_ref`)."""
        return {
            "rungs": list(self.rungs),
            "eta": self.eta,
            "min_keep": self.min_keep,
            "mode": self.mode,
        }

    # -- promotion rule ------------------------------------------------------------

    @property
    def screening_rungs(self) -> Tuple[float, ...]:
        """The sub-full rungs candidates are screened at (may be empty)."""
        return self.rungs[:-1]

    def keep_count(self, pool_size: int) -> int:
        """How many of a ``pool_size`` pool survive one rung."""
        if pool_size <= 0:
            return 0
        return min(pool_size, max(self.min_keep, math.ceil(pool_size / self.eta)))

    def select_survivors(self, scores: Sequence[float]) -> List[int]:
        """Indices of the survivors of one rung, in submission order.

        Ranking is by score (descending) with submission order breaking
        ties, so promotion is deterministic for any scheduling of the rung's
        evaluations.
        """
        keep = self.keep_count(len(scores))
        ranked = sorted(range(len(scores)), key=lambda i: (-scores[i], i))
        return sorted(ranked[:keep])

    def plan(self, pool_size: int) -> List[Tuple[int, float, int]]:
        """The ``(rung index, fraction, pool size)`` ladder a pool walks.

        Rungs that would not eliminate anyone are skipped (screening a pool
        it must keep whole is pure overhead).  This is the single definition
        of which rungs run: the engine's ``_screen_ladder`` iterates exactly
        these steps, with the final ``(…, 1.0, …)`` entry sizing the
        full-fidelity pool.
        """
        steps: List[Tuple[int, float, int]] = []
        pool = pool_size
        for rung_index, fraction in enumerate(self.screening_rungs):
            if self.keep_count(pool) >= pool:
                continue
            steps.append((rung_index, fraction, pool))
            pool = self.keep_count(pool)
        steps.append((len(self.rungs) - 1, 1.0, pool))
        return steps
