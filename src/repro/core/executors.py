"""Pluggable evaluation executors: how the engine fans evaluation work out.

The :class:`~repro.core.engine.EvaluationEngine` decides *what* to evaluate
(check/repair, dedup, memo and store tiers); an :class:`Executor` decides
*how* the surviving unique units of work actually run.  A unit
(:class:`EvalUnit`) is either one whole candidate evaluation or -- under
multi-scenario sharding -- one (candidate, scenario) pair.  Executors are
registered by name and selected through
:class:`~repro.core.engine.EngineConfig.executor`, so a new backend plugs in
without touching the engine:

``serial``
    In-process, in submission order.  No timeout or crash isolation (the
    DSL step budget still bounds candidate runtime); this is the reference
    trajectory every other backend must reproduce bit-for-bit.
``thread``
    A reused :class:`~concurrent.futures.ThreadPoolExecutor`.  Cheap fan-out
    for evaluators that release the GIL or are I/O-bound; per-unit timeouts
    (timed-out threads are abandoned, not killed).
``process``
    A reused :class:`~concurrent.futures.ProcessPoolExecutor` with the
    evaluator pickled once into each worker.  True parallelism plus hard
    crash isolation: a worker that dies takes neither the pool's results nor
    the search down.
``async``
    An asyncio event loop multiplexing units over a bounded thread pool.
    Evaluators that implement ``evaluate_async`` (a coroutine) are awaited
    natively, so overlap-friendly evaluators (remote services, async I/O)
    can exceed ``max_workers`` in-flight requests; everything else behaves
    like ``thread``.

Every backend returns results in submission order and reuses the engine's
failure/timeout conventions, which is what keeps a fixed seed byte-identical
across backends (asserted in the tests).
"""

from __future__ import annotations

import asyncio
from abc import ABC, abstractmethod
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass
from typing import Dict, List, Optional, Type

from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.scenarios import MultiScenarioEvaluator
from repro.dsl.ast import Program


@dataclass(frozen=True)
class EvalUnit:
    """One unit of evaluation work.

    ``scenario`` is ``None`` for a whole-candidate evaluation; an index
    selects one scenario of a :class:`MultiScenarioEvaluator` (the engine's
    sharded mode).  ``failure_score`` scores the unit when it times out.
    """

    program: Program
    scenario: Optional[int] = None
    failure_score: float = float("-inf")


# -- process-pool plumbing ----------------------------------------------------------
#
# Pickled callables must be module-level; the evaluator itself is shipped
# once per worker through the pool initializer.

_WORKER_EVALUATOR: Optional[Evaluator] = None


def _init_worker(evaluator: Evaluator) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _evaluate_in_worker(program: Program) -> EvaluationResult:
    assert _WORKER_EVALUATOR is not None, "worker pool not initialised"
    return _WORKER_EVALUATOR.evaluate(program)


def _evaluate_scenario_in_worker(program: Program, index: int) -> EvaluationResult:
    assert _WORKER_EVALUATOR is not None, "worker pool not initialised"
    assert isinstance(_WORKER_EVALUATOR, MultiScenarioEvaluator)
    return _WORKER_EVALUATOR.evaluate_scenario(program, index)


# -- the executor protocol ----------------------------------------------------------


class Executor(ABC):
    """One evaluation backend; created per engine, reused across batches.

    ``config`` is the engine's :class:`~repro.core.engine.EngineConfig`
    (``max_workers``, ``eval_timeout_s``); ``evaluator`` the engine's
    evaluator.  ``run_units`` must return one result per unit, in unit
    order, and record timeouts on ``stats``.
    """

    #: Registry key (set by subclasses).
    name: str = ""

    def __init__(self, config, evaluator: Evaluator):
        self.config = config
        self.evaluator = evaluator

    @abstractmethod
    def run_units(self, units: List[EvalUnit], stats) -> List[EvaluationResult]:
        """Evaluate every unit; results in submission order."""

    def close(self) -> None:
        """Release any workers (the engine recreates the executor lazily)."""

    # -- shared helpers -----------------------------------------------------------

    def _run_inline(self, unit: EvalUnit) -> EvaluationResult:
        """Evaluate one unit in the calling process (fallback/reference path)."""
        if unit.scenario is None:
            return self.evaluator.evaluate(unit.program)
        assert isinstance(self.evaluator, MultiScenarioEvaluator)
        return self.evaluator.evaluate_scenario(unit.program, unit.scenario)


class SerialExecutor(Executor):
    """In-process, ordered evaluation -- the reference trajectory."""

    name = "serial"

    def run_units(self, units: List[EvalUnit], stats) -> List[EvaluationResult]:
        return [self._run_inline(unit) for unit in units]


class _PoolExecutor(Executor):
    """Shared submit/collect machinery for worker-pool backends.

    The pool is created lazily and reused across batches.  Collection walks
    futures in submission order with the configured per-unit timeout; once
    the pool is known-bad (a timeout or a dead worker), still-queued units
    are cancelled and rescued in-process instead of each being charged a
    full timeout, and the pool is discarded so the next batch starts fresh.
    """

    def __init__(self, config, evaluator: Evaluator):
        super().__init__(config, evaluator)
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    def _submit(self, pool, unit: EvalUnit) -> Future:
        raise NotImplementedError

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _discard_pool(self, wait: bool) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        self._discard_pool(wait=True)

    def run_units(self, units: List[EvalUnit], stats) -> List[EvaluationResult]:
        pool = self._ensure_pool()
        futures = [self._submit(pool, unit) for unit in units]
        results: List[EvaluationResult] = []
        abandon = False
        for unit, future in zip(units, futures):
            if abandon and future.cancel():
                results.append(self._run_inline(unit))
                continue
            result, healthy = self._collect(unit, future, stats)
            results.append(result)
            abandon = abandon or not healthy
        if abandon:
            # A timed-out or dead worker cannot be reclaimed; abandon the
            # pool rather than blocking the search (the DSL step budget
            # bounds any stray work) and let the next batch start fresh.
            self._discard_pool(wait=False)
        return results

    def _collect(self, unit: EvalUnit, future: Future, stats) -> tuple:
        """Collect one future; returns ``(result, pool_still_healthy)``."""
        timeout = self.config.eval_timeout_s
        try:
            return future.result(timeout=timeout), True
        except FutureTimeoutError:
            future.cancel()
            stats.eval_timeouts += 1
            return (
                EvaluationResult.failure(
                    f"evaluation timed out after {timeout}s",
                    unit.failure_score,
                    transient=True,
                ),
                False,
            )
        except BrokenExecutor:
            # Crash isolation: a worker died (e.g. a hard crash in a process
            # pool).  Re-evaluate this unit in-process, where
            # Evaluator.evaluate converts ordinary failures into invalid
            # results.
            return self._run_inline(unit), False
        except Exception as exc:  # noqa: BLE001 - worker boundary
            return (
                EvaluationResult.failure(
                    f"evaluation failed in worker: {type(exc).__name__}: {exc}",
                    unit.failure_score,
                    transient=True,
                ),
                True,
            )


class ThreadExecutor(_PoolExecutor):
    """Thread-pool fan-out (shared-memory evaluator, abandonable timeouts)."""

    name = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.config.max_workers)

    def _submit(self, pool, unit: EvalUnit) -> Future:
        if unit.scenario is None:
            return pool.submit(self.evaluator.evaluate, unit.program)
        return pool.submit(self.evaluator.evaluate_scenario, unit.program, unit.scenario)


class ProcessExecutor(_PoolExecutor):
    """Process-pool fan-out (pickled evaluator, hard crash isolation)."""

    name = "process"

    def _make_pool(self):
        return ProcessPoolExecutor(
            max_workers=self.config.max_workers,
            initializer=_init_worker,
            initargs=(self.evaluator,),
        )

    def _submit(self, pool, unit: EvalUnit) -> Future:
        if unit.scenario is None:
            return pool.submit(_evaluate_in_worker, unit.program)
        return pool.submit(_evaluate_scenario_in_worker, unit.program, unit.scenario)


class AsyncExecutor(_PoolExecutor):
    """Asyncio multiplexing over a bounded thread pool.

    Synchronous evaluators run on the thread pool exactly like the
    ``thread`` backend (one pool slot per in-flight unit); an evaluator
    exposing ``evaluate_async(program)`` (a coroutine) is awaited on the
    loop itself and bypasses the pool entirely, so overlap-friendly
    evaluators (remote services, async I/O) really do exceed
    ``max_workers`` in-flight requests.  Timeout handling mirrors the
    thread backend: a timed-out synchronous unit abandons its pool thread,
    later units of the batch are rescued on fresh threads instead of being
    charged queue-wait they never asked for, and the poisoned pool is
    discarded so the next batch starts clean.  Results keep submission
    order.
    """

    name = "async"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.config.max_workers)

    def run_units(self, units: List[EvalUnit], stats) -> List[EvaluationResult]:
        before = stats.eval_timeouts
        results = asyncio.run(self._run_all(units, stats))
        if stats.eval_timeouts > before:
            # A timed-out synchronous unit still occupies a pool thread
            # (threads cannot be killed); keeping the pool would let hung
            # work starve every later batch.
            self._discard_pool(wait=False)
        return results

    async def _run_all(self, units: List[EvalUnit], stats) -> List[EvaluationResult]:
        semaphore = asyncio.Semaphore(self.config.max_workers)
        rescue = asyncio.Lock()
        loop = asyncio.get_running_loop()
        pool = self._ensure_pool()
        poisoned = False  # a sync timeout left a hung thread in the pool

        async def one(unit: EvalUnit) -> EvaluationResult:
            nonlocal poisoned
            native = (
                unit.scenario is None
                and getattr(self.evaluator, "evaluate_async", None) is not None
            )
            if native:
                # Coroutines never touch the pool: their in-flight overlap
                # is bounded by the batch, not by max_workers.
                result, _timed_out = await self._guarded(
                    unit, self.evaluator.evaluate_async(unit.program), stats
                )
                return result
            async with semaphore:
                if poisoned:
                    # Queueing behind a hung thread would charge this unit
                    # wait time against its own timeout; rescue it on a
                    # fresh thread (serially, like the thread backend).
                    async with rescue:
                        return await loop.run_in_executor(
                            None, self._run_inline, unit
                        )
                result, timed_out = await self._guarded(
                    unit, loop.run_in_executor(pool, self._run_inline, unit), stats
                )
                poisoned = poisoned or timed_out
                return result

        return list(await asyncio.gather(*(one(unit) for unit in units)))

    async def _guarded(self, unit: EvalUnit, awaitable, stats) -> tuple:
        """Await one unit with the configured timeout; ``(result, timed_out)``."""
        try:
            result = await asyncio.wait_for(
                awaitable, timeout=self.config.eval_timeout_s
            )
            return result, False
        except asyncio.TimeoutError:
            stats.eval_timeouts += 1
            return (
                EvaluationResult.failure(
                    f"evaluation timed out after {self.config.eval_timeout_s}s",
                    unit.failure_score,
                    transient=True,
                ),
                True,
            )
        except Exception as exc:  # noqa: BLE001 - worker boundary
            return (
                EvaluationResult.failure(
                    f"evaluation failed in worker: {type(exc).__name__}: {exc}",
                    unit.failure_score,
                    transient=True,
                ),
                False,
            )


# -- registry -----------------------------------------------------------------------

_EXECUTORS: Dict[str, Type[Executor]] = {}


def register_executor(cls: Type[Executor]) -> Type[Executor]:
    """Register an executor backend under ``cls.name`` (last wins)."""
    if not cls.name:
        raise ValueError("an Executor must declare a non-empty name")
    _EXECUTORS[cls.name] = cls
    return cls


def available_executors() -> List[str]:
    """Names of every registered backend."""
    return sorted(_EXECUTORS)


def create_executor(name: str, config, evaluator: Evaluator) -> Executor:
    """Instantiate the backend ``name`` for one engine."""
    try:
        cls = _EXECUTORS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown executor {name!r}; available: {available_executors()}"
        ) from exc
    return cls(config, evaluator)


for _cls in (SerialExecutor, ThreadExecutor, ProcessExecutor, AsyncExecutor):
    register_executor(_cls)
