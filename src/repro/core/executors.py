"""Pluggable evaluation executors: how the engine fans evaluation work out.

The :class:`~repro.core.engine.EvaluationEngine` decides *what* to evaluate
(check/repair, dedup, memo and store tiers); an :class:`Executor` decides
*how* the surviving unique units of work actually run.  A unit
(:class:`EvalUnit`) is either one whole candidate evaluation or -- under
multi-scenario sharding -- one (candidate, scenario) pair.  Executors are
registered by name and selected through
:class:`~repro.core.engine.EngineConfig.executor`, so a new backend plugs in
without touching the engine:

``serial``
    In-process, in submission order.  No timeout or crash isolation (the
    DSL step budget still bounds candidate runtime); this is the reference
    trajectory every other backend must reproduce bit-for-bit.
``thread``
    A reused :class:`~concurrent.futures.ThreadPoolExecutor`.  Cheap fan-out
    for evaluators that release the GIL or are I/O-bound; per-unit timeouts
    (timed-out threads are abandoned, not killed).
``process``
    A reused :class:`~concurrent.futures.ProcessPoolExecutor` with the
    evaluator pickled once into each worker.  True parallelism plus hard
    crash isolation: a worker that dies takes neither the pool's results nor
    the search down.
``async``
    An asyncio event loop multiplexing units over a bounded thread pool.
    Evaluators that implement ``evaluate_async`` (a coroutine) are awaited
    natively, so overlap-friendly evaluators (remote services, async I/O)
    can exceed ``max_workers`` in-flight requests; everything else behaves
    like ``thread``.
``distributed``
    A spool-directory work queue (see :mod:`repro.core.queue`): the
    coordinator serializes units into ``<queue>/pending/``, worker
    *processes* -- spawned locally and/or launched on any host that shares
    the queue path via ``python -m repro worker`` -- claim them atomically
    with heartbeated leases, and results flow back through the queue (and
    the shared evaluation store, so concurrent runs warm-start each other).
    A SIGKILL'd worker's tasks are reclaimed on lease expiry; a queue with
    no live workers falls back to inline evaluation, so the search always
    terminates.

Every backend returns results in submission order and reuses the engine's
failure/timeout conventions, which is what keeps a fixed seed byte-identical
across backends (asserted in the tests).
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import shutil
import tempfile
import time
import uuid
from abc import ABC, abstractmethod
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Type

from repro.core import queue as spool
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.events import TaskDispatched, TaskReclaimed, WorkerJoined
from repro.core.scenarios import MultiScenarioEvaluator
from repro.dsl.ast import Program
from repro.dsl.codegen import to_source


@dataclass(frozen=True)
class EvalUnit:
    """One unit of evaluation work.

    ``scenario`` is ``None`` for a whole-candidate evaluation; an index
    selects one scenario of a :class:`MultiScenarioEvaluator` (the engine's
    sharded mode).  ``failure_score`` scores the unit when it times out.
    """

    program: Program
    scenario: Optional[int] = None
    failure_score: float = float("-inf")


# -- process-pool plumbing ----------------------------------------------------------
#
# Pickled callables must be module-level; the evaluator itself is shipped
# once per worker through the pool initializer.

_WORKER_EVALUATOR: Optional[Evaluator] = None


def _init_worker(evaluator: Evaluator) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _evaluate_in_worker(program: Program) -> EvaluationResult:
    assert _WORKER_EVALUATOR is not None, "worker pool not initialised"
    return _WORKER_EVALUATOR.evaluate(program)


def _evaluate_scenario_in_worker(program: Program, index: int) -> EvaluationResult:
    assert _WORKER_EVALUATOR is not None, "worker pool not initialised"
    assert isinstance(_WORKER_EVALUATOR, MultiScenarioEvaluator)
    return _WORKER_EVALUATOR.evaluate_scenario(program, index)


# -- the executor protocol ----------------------------------------------------------


class Executor(ABC):
    """One evaluation backend; created per engine, reused across batches.

    ``config`` is the engine's :class:`~repro.core.engine.EngineConfig`
    (``max_workers``, ``eval_timeout_s``); ``evaluator`` the engine's
    evaluator.  ``run_units`` must return one result per unit, in unit
    order, and record timeouts on ``stats``.
    """

    #: Registry key (set by subclasses).
    name: str = ""

    def __init__(self, config, evaluator: Evaluator):
        self.config = config
        self.evaluator = evaluator
        #: Wired by the engine before each batch: the run's EventBus (or
        #: ``None``) and the store view matching this executor's evaluator
        #: (full-fidelity or rung-qualified).  Backends may ignore both; the
        #: distributed backend uses them for worker/task telemetry and
        #: cross-run result sharing.
        self.events = None
        self.bound_store = None

    @abstractmethod
    def run_units(self, units: List[EvalUnit], stats) -> List[EvaluationResult]:
        """Evaluate every unit; results in submission order."""

    def close(self) -> None:
        """Release any workers (the engine recreates the executor lazily)."""

    # -- shared helpers -----------------------------------------------------------

    def _run_inline(self, unit: EvalUnit) -> EvaluationResult:
        """Evaluate one unit in the calling process (fallback/reference path)."""
        if unit.scenario is None:
            return self.evaluator.evaluate(unit.program)
        assert isinstance(self.evaluator, MultiScenarioEvaluator)
        return self.evaluator.evaluate_scenario(unit.program, unit.scenario)


class SerialExecutor(Executor):
    """In-process, ordered evaluation -- the reference trajectory."""

    name = "serial"

    def run_units(self, units: List[EvalUnit], stats) -> List[EvaluationResult]:
        return [self._run_inline(unit) for unit in units]


class _PoolExecutor(Executor):
    """Shared submit/collect machinery for worker-pool backends.

    The pool is created lazily and reused across batches.  Collection walks
    futures in submission order with the configured per-unit timeout; once
    the pool is known-bad (a timeout or a dead worker), still-queued units
    are cancelled and rescued in-process instead of each being charged a
    full timeout, and the pool is discarded so the next batch starts fresh.
    """

    def __init__(self, config, evaluator: Evaluator):
        super().__init__(config, evaluator)
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    def _submit(self, pool, unit: EvalUnit) -> Future:
        raise NotImplementedError

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _discard_pool(self, wait: bool) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        self._discard_pool(wait=True)

    def run_units(self, units: List[EvalUnit], stats) -> List[EvaluationResult]:
        pool = self._ensure_pool()
        futures = [self._submit(pool, unit) for unit in units]
        results: List[EvaluationResult] = []
        abandon = False
        for unit, future in zip(units, futures):
            if abandon and future.cancel():
                results.append(self._run_inline(unit))
                continue
            result, healthy = self._collect(unit, future, stats)
            results.append(result)
            abandon = abandon or not healthy
        if abandon:
            # A timed-out or dead worker cannot be reclaimed; abandon the
            # pool rather than blocking the search (the DSL step budget
            # bounds any stray work) and let the next batch start fresh.
            self._discard_pool(wait=False)
        return results

    def _collect(self, unit: EvalUnit, future: Future, stats) -> tuple:
        """Collect one future; returns ``(result, pool_still_healthy)``."""
        timeout = self.config.eval_timeout_s
        try:
            return future.result(timeout=timeout), True
        except FutureTimeoutError:
            future.cancel()
            stats.eval_timeouts += 1
            return (
                EvaluationResult.failure(
                    f"evaluation timed out after {timeout}s",
                    unit.failure_score,
                    transient=True,
                ),
                False,
            )
        except BrokenExecutor:
            # Crash isolation: a worker died (e.g. a hard crash in a process
            # pool).  Re-evaluate this unit in-process, where
            # Evaluator.evaluate converts ordinary failures into invalid
            # results.
            return self._run_inline(unit), False
        except Exception as exc:  # noqa: BLE001 - worker boundary
            return (
                EvaluationResult.failure(
                    f"evaluation failed in worker: {type(exc).__name__}: {exc}",
                    unit.failure_score,
                    transient=True,
                ),
                True,
            )


class ThreadExecutor(_PoolExecutor):
    """Thread-pool fan-out (shared-memory evaluator, abandonable timeouts)."""

    name = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.config.max_workers)

    def _submit(self, pool, unit: EvalUnit) -> Future:
        if unit.scenario is None:
            return pool.submit(self.evaluator.evaluate, unit.program)
        return pool.submit(self.evaluator.evaluate_scenario, unit.program, unit.scenario)


class ProcessExecutor(_PoolExecutor):
    """Process-pool fan-out (pickled evaluator, hard crash isolation)."""

    name = "process"

    def _make_pool(self):
        return ProcessPoolExecutor(
            max_workers=self.config.max_workers,
            initializer=_init_worker,
            initargs=(self.evaluator,),
        )

    def _submit(self, pool, unit: EvalUnit) -> Future:
        if unit.scenario is None:
            return pool.submit(_evaluate_in_worker, unit.program)
        return pool.submit(_evaluate_scenario_in_worker, unit.program, unit.scenario)


class AsyncExecutor(_PoolExecutor):
    """Asyncio multiplexing over a bounded thread pool.

    Synchronous evaluators run on the thread pool exactly like the
    ``thread`` backend (one pool slot per in-flight unit); an evaluator
    exposing ``evaluate_async(program)`` (a coroutine) is awaited on the
    loop itself and bypasses the pool entirely, so overlap-friendly
    evaluators (remote services, async I/O) really do exceed
    ``max_workers`` in-flight requests.  Timeout handling mirrors the
    thread backend: a timed-out synchronous unit abandons its pool thread,
    later units of the batch are rescued on fresh threads instead of being
    charged queue-wait they never asked for, and the poisoned pool is
    discarded so the next batch starts clean.  Results keep submission
    order.
    """

    name = "async"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.config.max_workers)

    def run_units(self, units: List[EvalUnit], stats) -> List[EvaluationResult]:
        before = stats.eval_timeouts
        results = asyncio.run(self._run_all(units, stats))
        if stats.eval_timeouts > before:
            # A timed-out synchronous unit still occupies a pool thread
            # (threads cannot be killed); keeping the pool would let hung
            # work starve every later batch.
            self._discard_pool(wait=False)
        return results

    async def _run_all(self, units: List[EvalUnit], stats) -> List[EvaluationResult]:
        semaphore = asyncio.Semaphore(self.config.max_workers)
        rescue = asyncio.Lock()
        loop = asyncio.get_running_loop()
        pool = self._ensure_pool()
        poisoned = False  # a sync timeout left a hung thread in the pool

        async def one(unit: EvalUnit) -> EvaluationResult:
            nonlocal poisoned
            native = (
                unit.scenario is None
                and getattr(self.evaluator, "evaluate_async", None) is not None
            )
            if native:
                # Coroutines never touch the pool: their in-flight overlap
                # is bounded by the batch, not by max_workers.
                result, _timed_out = await self._guarded(
                    unit, self.evaluator.evaluate_async(unit.program), stats
                )
                return result
            async with semaphore:
                if poisoned:
                    # Queueing behind a hung thread would charge this unit
                    # wait time against its own timeout; rescue it on a
                    # fresh thread (serially, like the thread backend).
                    async with rescue:
                        return await loop.run_in_executor(
                            None, self._run_inline, unit
                        )
                result, timed_out = await self._guarded(
                    unit, loop.run_in_executor(pool, self._run_inline, unit), stats
                )
                poisoned = poisoned or timed_out
                return result

        return list(await asyncio.gather(*(one(unit) for unit in units)))

    async def _guarded(self, unit: EvalUnit, awaitable, stats) -> tuple:
        """Await one unit with the configured timeout; ``(result, timed_out)``."""
        try:
            result = await asyncio.wait_for(
                awaitable, timeout=self.config.eval_timeout_s
            )
            return result, False
        except asyncio.TimeoutError:
            stats.eval_timeouts += 1
            return (
                EvaluationResult.failure(
                    f"evaluation timed out after {self.config.eval_timeout_s}s",
                    unit.failure_score,
                    transient=True,
                ),
                True,
            )
        except Exception as exc:  # noqa: BLE001 - worker boundary
            return (
                EvaluationResult.failure(
                    f"evaluation failed in worker: {type(exc).__name__}: {exc}",
                    unit.failure_score,
                    transient=True,
                ),
                False,
            )


class DistributedExecutor(Executor):
    """Multi-host fan-out over a spool-directory work queue.

    The coordinator (this object) enqueues serialized units on a
    :class:`~repro.core.queue.SpoolQueue`, spawns ``worker_count`` local
    worker processes (``None`` -> ``max_workers``; ``0`` -> rely entirely on
    externally-launched ``python -m repro worker`` processes pointed at
    ``queue_dir``), and gathers results in submission order.  Fault model:

    * a worker that dies mid-task stops heartbeating; after ``lease_ttl_s``
      the coordinator renames the lease back into ``pending/`` (one
      :class:`~repro.core.events.TaskReclaimed` per reclaim) where a
      surviving worker re-claims it, and a coordinator-spawned worker is
      respawned;
    * a task reclaimed :data:`RESCUE_ATTEMPTS` times -- or any task while
      the queue has no live workers at all -- is evaluated inline by the
      coordinator, so the batch always completes;
    * ``eval_timeout_s`` (when set) is enforced coordinator-side from the
      task's first observed claim, producing the same transient timeout
      failure the pool backends produce.

    Without an explicit ``queue_dir`` the queue lives in a private temp
    directory torn down on :meth:`close`; an explicit path (typically on a
    shared mount, under the artifacts tree) is what lets other hosts join.
    """

    name = "distributed"

    #: Reclaims of one task before the coordinator evaluates it inline.
    RESCUE_ATTEMPTS = 3

    def __init__(self, config, evaluator: Evaluator):
        super().__init__(config, evaluator)
        self._queue: Optional[spool.SpoolQueue] = None
        self._pool: Optional[spool.LocalWorkerPool] = None
        self._private_root: Optional[Path] = None
        self._evaluator_id: Optional[str] = None
        self._nonce = uuid.uuid4().hex[:8]
        self._batch_seq = 0
        self._seen_workers: Dict[str, dict] = {}
        self._completed_by: Dict[str, int] = {}
        self.tasks_dispatched = 0
        self.tasks_reclaimed = 0
        self.tasks_rescued = 0

    # -- queue lifecycle ----------------------------------------------------------

    def _worker_count(self) -> int:
        count = getattr(self.config, "worker_count", None)
        return self.config.max_workers if count is None else count

    def _ensure_queue(self) -> spool.SpoolQueue:
        if self._queue is None:
            queue_dir = getattr(self.config, "queue_dir", None)
            if queue_dir is None:
                self._private_root = Path(tempfile.mkdtemp(prefix="repro-queue-"))
                root = self._private_root
            else:
                root = Path(queue_dir)
            ttl = getattr(self.config, "lease_ttl_s", spool.DEFAULT_LEASE_TTL_S)
            self._queue = spool.SpoolQueue(root, lease_ttl_s=ttl)
            self._queue.write_config()
            count = self._worker_count()
            if count > 0:
                self._pool = spool.LocalWorkerPool(self._queue, count, self._nonce)
        if self._evaluator_id is None:
            self._evaluator_id = self._queue.publish_evaluator(self.evaluator)
        return self._queue

    def close(self) -> None:
        if self._pool is not None:
            self._pool.stop()
            self._pool = None
        if self._private_root is not None:
            shutil.rmtree(self._private_root, ignore_errors=True)
            self._private_root = None
        self._queue = None
        self._evaluator_id = None

    def fabric_stats(self) -> Optional[dict]:
        """Counters for the run's metadata record (``None`` before first use)."""
        if not self.tasks_dispatched:
            return None
        workers = {}
        for worker_id, info in sorted(self._seen_workers.items()):
            workers[worker_id] = {
                "host": info.get("host", ""),
                "pid": info.get("pid", 0),
                "completed": self._completed_by.get(worker_id, 0),
            }
        return {
            "queue": str(self._queue.root) if self._queue is not None else None,
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_reclaimed": self.tasks_reclaimed,
            "tasks_rescued": self.tasks_rescued,
            "workers_joined": len(self._seen_workers),
            "workers": workers,
        }

    # -- dispatch/gather ----------------------------------------------------------

    def run_units(self, units: List[EvalUnit], stats) -> List[EvaluationResult]:
        if not units:
            return []
        queue = self._ensure_queue()
        self._batch_seq += 1
        store_ref = None
        if self.bound_store is not None:
            store_ref = {
                "root": str(self.bound_store.store.root),
                "eval_key": self.bound_store.eval_key,
            }
        task_ids: List[str] = []
        for index, unit in enumerate(units):
            task_id = f"{self._nonce}-b{self._batch_seq:04d}-{index:05d}"
            program_key = hashlib.sha1(
                to_source(unit.program).encode("utf-8")
            ).hexdigest()
            queue.enqueue(
                task_id,
                spool.encode_task(
                    task_id,
                    unit.program,
                    evaluator_id=self._evaluator_id,
                    scenario=unit.scenario,
                    failure_score=unit.failure_score,
                    program_key=program_key,
                    source=to_source(unit.program),
                    store=store_ref if unit.scenario is None else None,
                ),
            )
            task_ids.append(task_id)
            self.tasks_dispatched += 1
            if self.events:
                self.events.emit(
                    TaskDispatched(
                        task_id=task_id,
                        program_key=program_key,
                        scenario=unit.scenario,
                    )
                )
        return self._gather(queue, units, task_ids, stats)

    def _gather(
        self,
        queue: spool.SpoolQueue,
        units: List[EvalUnit],
        task_ids: List[str],
        stats,
    ) -> List[EvaluationResult]:
        index_of = {task_id: i for i, task_id in enumerate(task_ids)}
        results: List[Optional[EvaluationResult]] = [None] * len(units)
        outstanding = set(task_ids)
        attempts = {task_id: 0 for task_id in task_ids}
        first_claim: Dict[str, float] = {}
        timeout = self.config.eval_timeout_s
        stall_grace = max(2.0 * queue.lease_ttl_s, 2.0)
        poll = 0.005
        last_progress = time.monotonic()
        while outstanding:
            progressed = False
            for task_id, payload in queue.collect(outstanding):
                results[index_of[task_id]] = spool.decode_result(payload)
                worker = payload.get("worker_id", "")
                self._completed_by[worker] = self._completed_by.get(worker, 0) + 1
                outstanding.discard(task_id)
                progressed = True
            # Poll registrations before the exit check: a fast worker can
            # register, claim and complete between two coordinator polls,
            # and its join must still be observed (events, fabric stats).
            self._poll_workers(queue)
            if not outstanding:
                break
            if self._pool is not None:
                self._pool.maintain()
            for task_id, holder in queue.reclaim_expired():
                if task_id not in outstanding:
                    continue
                attempts[task_id] += 1
                self.tasks_reclaimed += 1
                first_claim.pop(task_id, None)
                progressed = True
                if self.events:
                    self.events.emit(
                        TaskReclaimed(
                            task_id=task_id,
                            worker_id=holder,
                            attempt=attempts[task_id],
                        )
                    )
            now = time.monotonic()
            if timeout is not None:
                for task_id in queue.leased_tasks():
                    if task_id in outstanding and task_id not in first_claim:
                        first_claim[task_id] = now
                for task_id, since in list(first_claim.items()):
                    if task_id in outstanding and now - since > timeout:
                        stats.eval_timeouts += 1
                        index = index_of[task_id]
                        results[index] = EvaluationResult.failure(
                            f"evaluation timed out after {timeout}s",
                            units[index].failure_score,
                            transient=True,
                        )
                        outstanding.discard(task_id)
                        queue.forget(task_id)
                        progressed = True
            rescue_ids = [
                task_id
                for task_id in outstanding
                if attempts[task_id] >= self.RESCUE_ATTEMPTS
            ]
            if (
                not rescue_ids
                and self._no_live_workers(queue)
                and now - last_progress > stall_grace
            ):
                # Nobody left to do the work (and nobody joining): finish the
                # batch inline rather than hanging the search.
                rescue_ids = list(outstanding)
            for task_id in sorted(rescue_ids):
                if not self._claim_for_rescue(queue, task_id):
                    continue  # a worker beat us to it; let it run
                index = index_of[task_id]
                results[index] = self._run_inline(units[index])
                self.tasks_rescued += 1
                queue.forget(task_id)
                outstanding.discard(task_id)
                progressed = True
            if progressed:
                last_progress = time.monotonic()
                poll = 0.005
            else:
                time.sleep(poll)
                poll = min(poll * 2, 0.05)
        return results  # type: ignore[return-value]

    def _poll_workers(self, queue: spool.SpoolQueue) -> None:
        for worker_id, info in queue.worker_records().items():
            if worker_id in self._seen_workers:
                continue
            self._seen_workers[worker_id] = info
            if self.events:
                self.events.emit(
                    WorkerJoined(
                        worker_id=worker_id,
                        host=str(info.get("host", "")),
                        pid=int(info.get("pid", 0) or 0),
                    )
                )

    def _no_live_workers(self, queue: spool.SpoolQueue) -> bool:
        if self._pool is not None and self._pool.alive() > 0:
            return False
        return not queue.live_workers()

    @staticmethod
    def _claim_for_rescue(queue: spool.SpoolQueue, task_id: str) -> bool:
        try:
            os.replace(
                queue.pending_dir / f"{task_id}.json",
                queue.leases_dir / f"{task_id}.json",
            )
            return True
        except OSError:
            return False


# -- registry -----------------------------------------------------------------------

_EXECUTORS: Dict[str, Type[Executor]] = {}


def register_executor(cls: Type[Executor]) -> Type[Executor]:
    """Register an executor backend under ``cls.name`` (last wins)."""
    if not cls.name:
        raise ValueError("an Executor must declare a non-empty name")
    _EXECUTORS[cls.name] = cls
    return cls


def available_executors() -> List[str]:
    """Names of every registered backend."""
    return sorted(_EXECUTORS)


def create_executor(name: str, config, evaluator: Evaluator) -> Executor:
    """Instantiate the backend ``name`` for one engine."""
    try:
        cls = _EXECUTORS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown executor {name!r}; available: {available_executors()}"
        ) from exc
    return cls(config, evaluator)


for _cls in (
    SerialExecutor,
    ThreadExecutor,
    ProcessExecutor,
    AsyncExecutor,
    DistributedExecutor,
):
    register_executor(_cls)
