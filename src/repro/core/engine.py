"""Batched candidate-evaluation engine (dedup, memoization, parallel fan-out).

The evolutionary search used to validate and evaluate candidates one at a
time, straight through the tree-walking interpreter.  This module is the
shared execution substrate that replaces that loop for every domain:

* **Check/repair phase** -- candidates are checked (and optionally repaired
  through the Generator) serially, in submission order.  This phase is cheap
  and must stay ordered: the synthetic LLM client is a seeded RNG, so the
  sequence of repair calls is part of the reproducible search trajectory.
* **Dedup** -- candidates that check out are keyed by the SHA-1 of their
  *canonical* source (the parsed program re-rendered by ``to_source``), so
  syntactic duplicates -- which LLMs re-emit constantly -- collapse to one
  evaluation per batch.
* **Memoization** -- evaluation results are cached across batches/rounds in
  the same canonical-key table, so a candidate regenerated in round 7 reuses
  its round-2 score.  Hit counters feed the per-round
  :class:`~repro.core.results.RoundSummary` statistics.
* **Parallel evaluation** -- unique programs fan out over a
  ``concurrent.futures`` thread or process pool with an optional
  per-candidate timeout.  Failures inside a worker (including a broken
  process pool) degrade to an in-process serial evaluation, so one bad
  candidate cannot take down the search.
* **Scenario sharding** -- when the evaluator is a
  :class:`~repro.core.scenarios.MultiScenarioEvaluator`, the unit of parallel
  work becomes one (candidate, scenario) pair: every scenario of every unique
  candidate is its own pool task (with its own timeout and crash isolation),
  and per-candidate results are recombined with the same ``combine`` the
  serial path uses.

Each candidate that receives an evaluation result (fresh or cached) is
announced as a :class:`~repro.core.events.CandidateEvaluated` event on the
engine's :class:`~repro.core.events.EventBus`, after the batch's results are
assigned and in submission order.

Evaluation is assumed deterministic and side-effect free per candidate
(true for both shipped domains), which is what makes reordering, dedup and
memoization result-preserving: a fixed seed yields the same search outcome
with any engine configuration.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.checker import Checker
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.events import CandidateEvaluated, EventBus
from repro.core.generator import Generator
from repro.core.results import Candidate, ScoredCandidate
from repro.core.scenarios import MultiScenarioEvaluator
from repro.dsl.ast import Program
from repro.dsl.codegen import to_source


@dataclass
class EngineConfig:
    """Execution knobs of the evaluation engine.

    ``max_workers=1`` (the default) keeps evaluation serial and in-process;
    anything larger fans unique candidates out over ``executor`` workers.
    ``eval_timeout_s`` bounds how long the engine waits for one candidate's
    evaluation; a timed-out candidate gets a failure result and its worker is
    abandoned (threads cannot be killed; the DSL step budget still bounds the
    stray work).  Timeouts and crash isolation require a worker pool: with
    ``max_workers=1`` or ``executor="serial"`` evaluation runs in-process and
    ``eval_timeout_s`` has no effect.  ``dedup`` collapses canonical duplicates within a batch;
    ``memoize`` reuses evaluation results across batches.
    """

    max_workers: int = 1
    executor: str = "thread"  # "thread" | "process" | "serial"
    eval_timeout_s: Optional[float] = None
    dedup: bool = True
    memoize: bool = True

    def __post_init__(self) -> None:
        if self.max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if self.executor not in ("thread", "process", "serial"):
            raise ValueError(f"unknown executor {self.executor!r}")
        if self.eval_timeout_s is not None and self.eval_timeout_s <= 0:
            raise ValueError("eval_timeout_s must be positive")


@dataclass
class BatchStats:
    """What happened while processing one batch of candidates."""

    checked: int = 0
    passed_check: int = 0
    passed_after_repair: int = 0
    failure_codes: Dict[str, int] = field(default_factory=dict)
    eval_cache_lookups: int = 0
    eval_cache_hits: int = 0
    unique_evaluations: int = 0
    eval_timeouts: int = 0


@dataclass
class BatchResult:
    """Scored candidates (input order preserved) plus batch statistics."""

    scored: List[ScoredCandidate]
    stats: BatchStats


# -- process-pool plumbing ----------------------------------------------------------

_WORKER_EVALUATOR: Optional[Evaluator] = None


def _init_worker(evaluator: Evaluator) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _evaluate_in_worker(program: Program) -> EvaluationResult:
    assert _WORKER_EVALUATOR is not None, "worker pool not initialised"
    return _WORKER_EVALUATOR.evaluate(program)


def _evaluate_scenario_in_worker(program: Program, index: int) -> EvaluationResult:
    assert _WORKER_EVALUATOR is not None, "worker pool not initialised"
    assert isinstance(_WORKER_EVALUATOR, MultiScenarioEvaluator)
    return _WORKER_EVALUATOR.evaluate_scenario(program, index)


def canonical_key(program: Program) -> str:
    """Stable identity of a candidate: SHA-1 of its canonical source."""
    return hashlib.sha1(to_source(program).encode("utf-8")).hexdigest()


class EvaluationEngine:
    """Shared check/repair/evaluate pipeline used by every search domain."""

    def __init__(
        self,
        checker: Checker,
        evaluator: Evaluator,
        generator: Optional[Generator] = None,
        repair_attempts: int = 1,
        config: Optional[EngineConfig] = None,
        events: Optional[EventBus] = None,
    ):
        self.checker = checker
        self.evaluator = evaluator
        self.generator = generator
        self.repair_attempts = repair_attempts
        self.config = config or EngineConfig()
        self.events = events if events is not None else EventBus()
        self._memo: Dict[str, EvaluationResult] = {}
        self._pool = None  # lazily-created executor, reused across batches
        # Cumulative counters across the engine's lifetime.
        self.cache_lookups = 0
        self.cache_hits = 0
        self.unique_evaluations = 0

    # -- memo management ----------------------------------------------------------

    def memo_snapshot(self) -> Dict[str, EvaluationResult]:
        """The memoized evaluations (used by checkpointing)."""
        return dict(self._memo)

    def restore_memo(self, memo: Dict[str, EvaluationResult]) -> None:
        """Preload memoized evaluations (used when resuming a search)."""
        self._memo.update(memo)

    # -- check/repair phase -------------------------------------------------------

    def check_candidate(self, candidate: Candidate) -> ScoredCandidate:
        """Check (and, on failure, repair) one candidate; no evaluation."""
        check = self.checker.check(candidate.source)
        issues = list(check.issues)
        if not check.ok and self.repair_attempts > 0 and self.generator is not None:
            for _attempt in range(self.repair_attempts):
                repaired_source = self.generator.repair(candidate.source, check.feedback)
                if repaired_source is None:
                    break
                recheck = self.checker.check(repaired_source)
                if recheck.ok:
                    candidate.source = repaired_source
                    candidate.repaired = True
                    candidate.origin = "generated"
                    check = recheck
                    break
                check = recheck
                issues.extend(recheck.issues)
        return ScoredCandidate(
            candidate=candidate,
            program=check.program if check.ok else None,
            check_ok=check.ok,
            check_issues=issues if not check.ok else [],
        )

    # -- evaluation phase ---------------------------------------------------------

    def process_batch(self, candidates: List[Candidate]) -> BatchResult:
        """Run the full pipeline over ``candidates``; preserves input order."""
        stats = BatchStats(checked=len(candidates))
        scored = [self.check_candidate(candidate) for candidate in candidates]
        for item in scored:
            if item.check_ok and not item.candidate.repaired:
                stats.passed_check += 1
            elif item.check_ok and item.candidate.repaired:
                stats.passed_after_repair += 1
            else:
                for issue in item.check_issues:
                    stats.failure_codes[issue.code] = (
                        stats.failure_codes.get(issue.code, 0) + 1
                    )

        # Group evaluable candidates by canonical key; memo hits resolve
        # immediately, the rest evaluate once per unique key.
        pending: Dict[str, List[ScoredCandidate]] = {}
        order: List[Tuple[str, Program]] = []
        fresh_ids: set = set()
        fallback_id = 0
        for item in scored:
            if not item.check_ok or item.program is None:
                continue
            stats.eval_cache_lookups += 1
            if self.config.dedup or self.config.memoize:
                key = canonical_key(item.program)
            else:
                fallback_id += 1
                key = f"#nodedup-{fallback_id}"
            if self.config.memoize and key in self._memo:
                item.evaluation = self._memo[key]
                stats.eval_cache_hits += 1
                continue
            group = pending.get(key)
            if group is None or not self.config.dedup:
                if group is None:
                    pending[key] = [item]
                else:  # dedup disabled but memoize on: evaluate each copy
                    fallback_id += 1
                    key = f"{key}#copy-{fallback_id}"
                    pending[key] = [item]
                order.append((key, item.program))
                fresh_ids.add(item.candidate.candidate_id)
            else:
                group.append(item)
                stats.eval_cache_hits += 1

        results = self._evaluate_many([program for _key, program in order], stats)
        for (key, _program), result in zip(order, results):
            # Transient failures (timeouts, dead workers) are not the
            # candidate's fault; never memoize them.
            if self.config.memoize and not key.startswith("#") and not result.transient:
                self._memo[key.split("#copy-")[0]] = result
            for item in pending[key]:
                item.evaluation = result
        stats.unique_evaluations = len(order)

        self.cache_lookups += stats.eval_cache_lookups
        self.cache_hits += stats.eval_cache_hits
        self.unique_evaluations += stats.unique_evaluations

        if self.events:
            for item in scored:
                if item.evaluation is None:
                    continue
                self.events.emit(
                    CandidateEvaluated(
                        candidate_id=item.candidate.candidate_id,
                        round_index=item.candidate.round_index,
                        origin=item.candidate.origin,
                        valid=item.valid,
                        score=item.evaluation.score,
                        cached=item.candidate.candidate_id not in fresh_ids,
                        scenario_scores=dict(item.evaluation.scenario_scores),
                    )
                )
        return BatchResult(scored=scored, stats=stats)

    # -- executors ----------------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool (recreated lazily on next use)."""
        self._discard_pool(wait=True)

    def _ensure_pool(self):
        if self._pool is None:
            cfg = self.config
            if cfg.executor == "thread":
                self._pool = ThreadPoolExecutor(max_workers=cfg.max_workers)
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=cfg.max_workers,
                    initializer=_init_worker,
                    initargs=(self.evaluator,),
                )
        return self._pool

    def _discard_pool(self, wait: bool) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None

    def _evaluate_many(
        self, programs: List[Program], stats: BatchStats
    ) -> List[EvaluationResult]:
        if not programs:
            return []
        cfg = self.config
        # Note: single-program batches still go through the pool when one is
        # configured -- the serial shortcut would silently drop the timeout
        # and crash isolation.
        serial = cfg.executor == "serial" or cfg.max_workers <= 1
        if serial:
            return [self.evaluator.evaluate(program) for program in programs]
        if isinstance(self.evaluator, MultiScenarioEvaluator):
            return self._evaluate_many_sharded(programs, self.evaluator, stats)
        pool = self._ensure_pool()
        if cfg.executor == "thread":
            futures = [pool.submit(self.evaluator.evaluate, p) for p in programs]
        else:
            futures = [pool.submit(_evaluate_in_worker, p) for p in programs]
        results: List[EvaluationResult] = []
        abandon = False
        for program, future in zip(programs, futures):
            # Once the pool is known-bad, rescue queued candidates in-process
            # instead of charging each a full timeout it never got to use.
            if abandon and future.cancel():
                results.append(self.evaluator.evaluate(program))
                continue
            result, healthy = self._collect(
                future,
                stats,
                retry=lambda p=program: self.evaluator.evaluate(p),
                failure_score=self.evaluator.failure_score,
            )
            results.append(result)
            abandon = abandon or not healthy
        if abandon:
            # A timed-out or dead worker cannot be reclaimed; abandon the
            # pool rather than blocking the search (the DSL step budget
            # bounds any stray work) and let the next batch start fresh.
            self._discard_pool(wait=False)
        return results

    def _evaluate_many_sharded(
        self,
        programs: List[Program],
        evaluator: MultiScenarioEvaluator,
        stats: BatchStats,
    ) -> List[EvaluationResult]:
        """Fan candidate x scenario tasks over the pool, then combine per candidate.

        Sharding at scenario granularity keeps the pool busy even for small
        batches (one slow scenario no longer serialises the others) and makes
        the per-candidate timeout a per-*scenario* timeout, preserving crash
        isolation at the finer grain.  ``combine`` is the same aggregation the
        serial path uses, so results are configuration-independent.
        """
        cfg = self.config
        pool = self._ensure_pool()
        tasks = [
            (program_index, scenario_index)
            for program_index in range(len(programs))
            for scenario_index in range(evaluator.scenario_count)
        ]
        if cfg.executor == "thread":
            futures = [
                pool.submit(evaluator.evaluate_scenario, programs[pi], si)
                for pi, si in tasks
            ]
        else:
            futures = [
                pool.submit(_evaluate_scenario_in_worker, programs[pi], si)
                for pi, si in tasks
            ]
        per_program: List[List[Optional[EvaluationResult]]] = [
            [None] * evaluator.scenario_count for _ in programs
        ]
        abandon = False
        for (pi, si), future in zip(tasks, futures):
            if abandon and future.cancel():
                per_program[pi][si] = evaluator.evaluate_scenario(programs[pi], si)
                continue
            result, healthy = self._collect(
                future,
                stats,
                retry=lambda p=programs[pi], s=si: evaluator.evaluate_scenario(p, s),
                failure_score=evaluator.scenario_failure_score(si),
            )
            per_program[pi][si] = result
            abandon = abandon or not healthy
        if abandon:
            self._discard_pool(wait=False)
        return [evaluator.combine(results) for results in per_program]

    def _collect(
        self, future: Future, stats: BatchStats, *, retry, failure_score: float
    ) -> tuple:
        """Collect one future; returns ``(result, pool_still_healthy)``.

        ``retry`` re-runs the unit of work in-process when the pool died
        beneath it; ``failure_score`` scores a timed-out unit (the wrapped
        evaluator's -- or, under scenario sharding, that scenario's -- failure
        score).
        """
        cfg = self.config
        try:
            return future.result(timeout=cfg.eval_timeout_s), True
        except FutureTimeoutError:
            future.cancel()
            stats.eval_timeouts += 1
            return (
                EvaluationResult.failure(
                    f"evaluation timed out after {cfg.eval_timeout_s}s",
                    failure_score,
                    transient=True,
                ),
                False,
            )
        except BrokenExecutor:
            # Crash isolation: a worker died (e.g. a hard crash in a process
            # pool).  Re-evaluate this unit in-process, where
            # Evaluator.evaluate converts ordinary failures into invalid
            # results.
            return retry(), False
        except Exception as exc:  # noqa: BLE001 - worker boundary
            return (
                EvaluationResult.failure(
                    f"evaluation failed in worker: {type(exc).__name__}: {exc}",
                    failure_score,
                    transient=True,
                ),
                True,
            )
