"""Batched candidate-evaluation engine (dedup, memo tiers, pluggable fan-out).

The evolutionary search used to validate and evaluate candidates one at a
time, straight through the tree-walking interpreter.  This module is the
shared execution substrate that replaces that loop for every domain:

* **Check/repair phase** -- candidates are checked (and optionally repaired
  through the Generator) serially, in submission order.  This phase is cheap
  and must stay ordered: the synthetic LLM client is a seeded RNG, so the
  sequence of repair calls is part of the reproducible search trajectory.
* **Dedup** -- candidates that check out are keyed by the SHA-1 of their
  *canonical* source (the parsed program re-rendered by ``to_source``), so
  syntactic duplicates -- which LLMs re-emit constantly -- collapse to one
  evaluation per batch.
* **Memo tiers** -- evaluation is served from the cheapest tier that has the
  answer: the in-memory memo (cross-round, same process), then -- when a
  :class:`~repro.core.store.BoundEvalStore` is attached -- the persistent
  content-addressed disk store (cross-*process*: sweep seeds, ``repro
  resume`` and repeated runs warm-start from it), and only then a fresh
  evaluation, whose result back-fills both tiers.
* **Pluggable fan-out** -- unique units of work run on a registered
  :class:`~repro.core.executors.Executor` backend (``serial`` / ``thread`` /
  ``process`` / ``async``), selected by :class:`EngineConfig`, with optional
  per-unit timeouts and crash isolation.
* **Scenario sharding** -- when the evaluator is a
  :class:`~repro.core.scenarios.MultiScenarioEvaluator` and a parallel
  backend is configured, the unit of work becomes one (candidate, scenario)
  pair: every scenario of every unique candidate is its own executor task
  (with its own timeout and crash isolation), and per-candidate results are
  recombined with the same ``combine`` the serial path uses.
* **Multi-fidelity screening** -- with a
  :class:`~repro.core.fidelity.FidelitySchedule` attached, the batch's
  fresh unique programs walk a successive-halving budget ladder: everyone
  is evaluated at the cheapest rung (a trace prefix / shortened netsim
  run), only the top ``1/eta`` fraction is promoted, and the final
  surviving pool runs at full fidelity.  Rung results are memoized and
  persisted under fidelity-qualified keys; ranking and selection only ever
  consume full-fidelity scores.

* **Static screening** -- with ``static_screen`` on and an evaluator that
  declares input intervals, rung "-1" below the ladder runs every evaluable
  candidate through the interval abstract interpreter
  (:mod:`repro.dsl.abstract`) and rejects the provably degenerate ones --
  constant output, input-independent output, or output pinned to the
  evaluator's clamp -- with a sentinel failure result at zero evaluator
  cost.

Each candidate that receives an evaluation result is announced as a
:class:`~repro.core.events.CandidateEvaluated` event on the engine's
:class:`~repro.core.events.EventBus`, after the batch's results are assigned
and in submission order; the event's ``cache_tier`` records where the result
came from (``"memory"`` / ``"disk"`` / ``"fresh"`` / ``"screened"``).

Evaluation is assumed deterministic and side-effect free per candidate
(true for both shipped domains), which is what makes reordering, dedup and
the memo tiers result-preserving: a fixed seed yields the same search
outcome with any engine configuration and any store state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.checker import Checker
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.events import (
    CandidateEliminated,
    CandidateEvaluated,
    CandidatePromoted,
    CandidateScreened,
    EventBus,
)
from repro.core.executors import EvalUnit, available_executors, create_executor
from repro.core.fidelity import FidelitySchedule
from repro.core.generator import Generator
from repro.core.results import Candidate, ScoredCandidate
from repro.core.scenarios import MultiScenarioEvaluator
from repro.core.store import BoundEvalStore
from repro.dsl.ast import Program
from repro.dsl.codegen import to_source
from repro.dsl.compile import BACKENDS as DSL_BACKENDS


@dataclass
class EngineConfig:
    """Execution knobs of the evaluation engine.

    ``max_workers=1`` (the default) keeps evaluation serial and in-process;
    anything larger fans unique candidates out over the ``executor`` backend
    (any name in :func:`~repro.core.executors.available_executors`).
    ``eval_timeout_s`` bounds how long the engine waits for one candidate's
    evaluation; a timed-out candidate gets a failure result and its worker is
    abandoned (threads cannot be killed; the DSL step budget still bounds the
    stray work).  Timeouts and crash isolation require a worker pool: with
    ``max_workers=1`` or ``executor="serial"`` evaluation runs in-process and
    ``eval_timeout_s`` has no effect.  ``dedup`` collapses canonical duplicates within a batch;
    ``memoize`` reuses evaluation results across batches (and gates the disk
    store tier, which is a persistent memo).

    ``dsl_backend`` selects how candidate DSL programs execute during
    evaluation (``"interpreter"`` / ``"compiled"`` / ``"vectorized"``); it is
    injected as the domain's ``backend`` kwarg by
    :func:`~repro.core.domain.build_search` unless the caller already set one
    explicitly.  ``None`` (the default) keeps the domain's own default.  All
    backends produce bit-identical scores -- the knob trades compilation
    effort for evaluation throughput, never results.

    ``static_screen`` turns on rung "-1" below the fidelity ladder: every
    evaluable candidate is first run through the interval abstract
    interpreter (:mod:`repro.dsl.abstract`), and candidates it proves
    degenerate -- constant output, input-independent output, or a return
    provably pinned to the evaluator's output clamp -- receive a sentinel
    failure result without ever touching the memo, the store or an
    executor.  A no-op when the evaluator declares no input intervals.
    Off by default; with it on, a fixed-seed run in which nothing screens
    is byte-identical to the same run with it off.

    ``pipeline`` asks the search loop to stream generated candidates into
    the engine as they arrive (and speculatively overlap the next round's
    generation with this round's tail evaluation) instead of barriering on
    the full batch; see :meth:`~repro.core.search.EvolutionarySearch`.
    Off by default -- it changes wall-clock scheduling only, never results.

    The remaining three knobs configure the ``distributed`` executor only
    (others ignore them).  ``queue_dir`` places the spool queue at a fixed
    path -- typically on a shared mount -- so externally-launched ``python
    -m repro worker`` processes (other hosts) can join; ``None`` uses a
    private temp directory.  ``worker_count`` is how many local worker
    processes the coordinator spawns (``None`` -> ``max_workers``; ``0`` ->
    none, rely entirely on external workers).  ``lease_ttl_s`` is how long a
    claimed task may go without a heartbeat before the coordinator reclaims
    it from a presumed-dead worker.
    """

    max_workers: int = 1
    executor: str = "thread"  # any registered backend; see core/executors.py
    eval_timeout_s: Optional[float] = None
    dedup: bool = True
    memoize: bool = True
    dsl_backend: Optional[str] = None
    static_screen: bool = False
    pipeline: bool = False
    queue_dir: Optional[str] = None
    worker_count: Optional[int] = None
    lease_ttl_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if self.executor not in available_executors():
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                f"available: {available_executors()}"
            )
        if self.eval_timeout_s is not None and self.eval_timeout_s <= 0:
            raise ValueError("eval_timeout_s must be positive")
        if self.dsl_backend is not None and self.dsl_backend not in DSL_BACKENDS:
            raise ValueError(
                f"unknown dsl_backend {self.dsl_backend!r}; "
                f"available: {sorted(DSL_BACKENDS)}"
            )
        if self.worker_count is not None and self.worker_count < 0:
            raise ValueError("worker_count must be >= 0")
        if self.lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")


@dataclass
class BatchStats:
    """What happened while processing one batch of candidates.

    ``store_lookups`` counts unique programs that missed the in-memory tier
    while a disk store was attached; ``store_hits`` how many of those were
    served from disk instead of a fresh evaluation.  ``unique_evaluations``
    counts memory-tier misses whether they were then satisfied from disk or
    evaluated fresh, so it is independent of the store's state.
    """

    checked: int = 0
    passed_check: int = 0
    passed_after_repair: int = 0
    failure_codes: Dict[str, int] = field(default_factory=dict)
    eval_cache_lookups: int = 0
    eval_cache_hits: int = 0
    unique_evaluations: int = 0
    eval_timeouts: int = 0
    store_lookups: int = 0
    store_hits: int = 0
    #: Fidelity-ladder traffic (0 without a schedule): fresh sub-full-rung
    #: evaluations, and how many promotion/elimination decisions the ladder
    #: took (in ``shadow`` mode these are would-be decisions).
    rung_evaluations: int = 0
    rung_promotions: int = 0
    rung_eliminations: int = 0
    #: Static-screening traffic (0 with ``static_screen`` off or no declared
    #: input intervals): candidates run through the abstract interpreter and
    #: how many it rejected before any evaluation.
    screen_checks: int = 0
    screened: int = 0


@dataclass
class BatchResult:
    """Scored candidates (input order preserved) plus batch statistics."""

    scored: List[ScoredCandidate]
    stats: BatchStats


def canonical_key(program: Program) -> str:
    """Stable identity of a candidate: SHA-1 of its canonical source."""
    return hashlib.sha1(to_source(program).encode("utf-8")).hexdigest()


def _plain_key(key: str) -> str:
    """Strip the dedup-disabled ``#copy-`` suffix off a batch key."""
    return key.split("#copy-")[0]


class EvaluationEngine:
    """Shared check/repair/evaluate pipeline used by every search domain."""

    def __init__(
        self,
        checker: Checker,
        evaluator: Evaluator,
        generator: Optional[Generator] = None,
        repair_attempts: int = 1,
        config: Optional[EngineConfig] = None,
        events: Optional[EventBus] = None,
        store: Optional[BoundEvalStore] = None,
        fidelity: Optional[FidelitySchedule] = None,
    ):
        self.checker = checker
        self.evaluator = evaluator
        self.generator = generator
        self.repair_attempts = repair_attempts
        self.config = config or EngineConfig()
        self.events = events if events is not None else EventBus()
        self.store = store
        self.fidelity: Optional[FidelitySchedule] = None
        self._memo: Dict[str, EvaluationResult] = {}
        self._executor = None  # lazily-created backend, reused across batches
        self._scaled_evaluators: Dict[float, Evaluator] = {}
        self._rung_executors: Dict[float, object] = {}
        # Static screener (rung "-1"): built lazily from the evaluator's
        # declared input intervals; verdicts cached by canonical key so a
        # re-emitted duplicate is only analysed once per engine lifetime.
        self._screener = None
        self._screener_ready = False
        self._screen_verdicts: Dict[str, object] = {}
        # Cumulative counters across the engine's lifetime.
        self.cache_lookups = 0
        self.cache_hits = 0
        self.unique_evaluations = 0
        self.store_lookups = 0
        self.store_hits = 0
        self.store_writes = 0
        self.rung_evaluations = 0
        self.rung_promotions = 0
        self.rung_eliminations = 0
        self.screen_checks = 0
        self.screened = 0
        #: Fabric counters harvested from ``distributed`` executors (one
        #: merged record across the main and rung executors); ``None`` when
        #: no distributed work happened.  Read by spec.run() for metadata.
        self.distributed: Optional[dict] = None
        if fidelity is not None:
            self.attach_fidelity(fidelity)

    # -- memo management ----------------------------------------------------------

    def memo_snapshot(self) -> Dict[str, EvaluationResult]:
        """The memoized evaluations (used by checkpointing)."""
        return dict(self._memo)

    def restore_memo(self, memo: Dict[str, EvaluationResult]) -> None:
        """Preload memoized evaluations (used when resuming a search)."""
        self._memo.update(memo)

    def attach_store(self, store: Optional[BoundEvalStore]) -> None:
        """Attach (or detach, with ``None``) the persistent disk memo tier."""
        self.store = store

    def attach_fidelity(self, fidelity: Optional[FidelitySchedule]) -> None:
        """Attach (or detach, with ``None``) the multi-fidelity schedule.

        Attaching validates that the evaluator can scale (every screening
        rung needs an ``at_fidelity`` evaluator), so a misconfigured ladder
        fails here rather than mid-search.
        """
        self._scaled_evaluators = {}
        self._close_rung_executors()
        self.fidelity = fidelity
        if fidelity is not None and fidelity.screening_rungs:
            try:
                self._scaled_evaluator(fidelity.screening_rungs[0])
            except NotImplementedError as exc:
                self.fidelity = None
                raise ValueError(
                    f"fidelity scheduling needs a scalable evaluator: {exc}"
                ) from exc

    def _scaled_evaluator(self, fraction: float) -> Evaluator:
        if fraction not in self._scaled_evaluators:
            self._scaled_evaluators[fraction] = self.evaluator.at_fidelity(fraction)
        return self._scaled_evaluators[fraction]

    def _static_screener(self):
        """The interval screener, or ``None`` without declared intervals."""
        if not self._screener_ready:
            self._screener_ready = True
            intervals = self.evaluator.input_intervals()
            if intervals is not None:
                from repro.dsl.abstract import StaticScreener

                self._screener = StaticScreener(intervals)
        return self._screener

    # -- check/repair phase -------------------------------------------------------

    def check_candidate(self, candidate: Candidate) -> ScoredCandidate:
        """Check (and, on failure, repair) one candidate; no evaluation."""
        check = self.checker.check(candidate.source)
        issues = list(check.issues)
        if not check.ok and self.repair_attempts > 0 and self.generator is not None:
            for _attempt in range(self.repair_attempts):
                repaired_source = self.generator.repair(candidate.source, check.feedback)
                if repaired_source is None:
                    break
                recheck = self.checker.check(repaired_source)
                if recheck.ok:
                    candidate.source = repaired_source
                    candidate.repaired = True
                    candidate.origin = "generated"
                    check = recheck
                    break
                check = recheck
                issues.extend(recheck.issues)
        return ScoredCandidate(
            candidate=candidate,
            program=check.program if check.ok else None,
            check_ok=check.ok,
            check_issues=issues if not check.ok else [],
        )

    def precheck_candidate(self, candidate: Candidate) -> ScoredCandidate:
        """Check one candidate *without* the repair loop.

        Pure with respect to the generator: the pipelined round uses this to
        classify streamed candidates immediately, deferring every repair --
        each of which consumes the shared LLM client's RNG stream -- to a
        single ordered phase that replays the serial path's client-call
        sequence exactly.
        """
        check = self.checker.check(candidate.source)
        return ScoredCandidate(
            candidate=candidate,
            program=check.program if check.ok else None,
            check_ok=check.ok,
            check_issues=list(check.issues) if not check.ok else [],
        )

    # -- evaluation phase ---------------------------------------------------------

    def process_batch(self, candidates: List[Candidate]) -> BatchResult:
        """Run the full pipeline over ``candidates``; preserves input order."""
        return self.process_scored(
            [self.check_candidate(candidate) for candidate in candidates]
        )

    def process_scored(self, scored: List[ScoredCandidate]) -> BatchResult:
        """Run the evaluation pipeline over already-checked candidates.

        This is the streaming entry point: the pipelined round checks
        candidates as they come off the generator and feeds the engine one
        chunk at a time.  Under the default ``dedup``+``memoize``
        configuration, splitting a batch into chunks preserves every
        statistic a serial :meth:`process_batch` would report (a cross-chunk
        duplicate becomes a memo hit instead of a group join -- both count
        as ``eval_cache_hits`` with tier ``"memory"``).
        """
        stats = BatchStats(checked=len(scored))
        for item in scored:
            if item.check_ok and not item.candidate.repaired:
                stats.passed_check += 1
            elif item.check_ok and item.candidate.repaired:
                stats.passed_after_repair += 1
            else:
                for issue in item.check_issues:
                    stats.failure_codes[issue.code] = (
                        stats.failure_codes.get(issue.code, 0) + 1
                    )

        tiers: Dict[str, str] = {}  # candidate_id -> "memory"|"disk"|"fresh"|"screened"

        # Static screening (rung "-1"): reject provably-degenerate candidates
        # before they can enter the dedup/memo pipeline, let alone cost an
        # evaluation.  Verdicts are cached by canonical key, so screening a
        # duplicate is a dict lookup.
        screen_events: List[object] = []
        if self.config.static_screen:
            screener = self._static_screener()
            if screener is not None:
                for item in scored:
                    if not item.check_ok or item.program is None:
                        continue
                    stats.screen_checks += 1
                    key = canonical_key(item.program)
                    verdict = self._screen_verdicts.get(key)
                    if verdict is None:
                        verdict = screener.screen(item.program)
                        self._screen_verdicts[key] = verdict
                    if not verdict.screened:
                        continue
                    stats.screened += 1
                    item.evaluation = EvaluationResult(
                        score=self.evaluator.failure_score,
                        valid=False,
                        error=verdict.error,
                    )
                    tiers[item.candidate.candidate_id] = "screened"
                    screen_events.append(
                        CandidateScreened(
                            candidate_id=item.candidate.candidate_id,
                            round_index=item.candidate.round_index,
                            reason=verdict.reason,
                            detail=verdict.detail,
                        )
                    )

        # Group evaluable candidates by canonical key; memory-tier hits
        # resolve immediately, disk-tier hits next, the rest evaluate once
        # per unique key.  The disk tier only engages under the default
        # dedup+memoize configuration: with either disabled the engine is
        # deliberately re-evaluating copies (ablation mode), and a persistent
        # memo would defeat that.
        use_store = self.store is not None and self.config.dedup and self.config.memoize
        pending: Dict[str, List[ScoredCandidate]] = {}
        order: List[Tuple[str, Program]] = []
        fallback_id = 0
        for item in scored:
            if not item.check_ok or item.program is None:
                continue
            if item.evaluation is not None:
                continue  # statically screened: never costs a cache lookup
            candidate_id = item.candidate.candidate_id
            stats.eval_cache_lookups += 1
            if self.config.dedup or self.config.memoize:
                key = canonical_key(item.program)
            else:
                fallback_id += 1
                key = f"#nodedup-{fallback_id}"
            if self.config.memoize and key in self._memo:
                item.evaluation = self._memo[key]
                stats.eval_cache_hits += 1
                tiers[candidate_id] = "memory"
                continue
            group = pending.get(key)
            if group is not None and self.config.dedup:
                group.append(item)
                stats.eval_cache_hits += 1
                tiers[candidate_id] = "memory"
                continue
            if use_store and not key.startswith("#") and not self._ladder_active():
                # This key is about to cost a fresh evaluation: try the disk
                # tier first.  ``store_lookups``/``unique_evaluations`` count
                # the memory-tier miss either way, so the eval-cache
                # statistics are identical whatever the store contains.
                # (With a fidelity ladder attached the disk lookup is
                # deferred until after screening -- see below -- so the
                # ladder's pool cannot depend on the store's state.)
                stats.store_lookups += 1
                stats.unique_evaluations += 1
                stored = self.store.get(key)
                if stored is not None:
                    self._memo[key] = stored
                    item.evaluation = stored
                    stats.store_hits += 1
                    tiers[candidate_id] = "disk"
                    continue
            if group is None:
                pending[key] = [item]
            else:  # dedup disabled but memoize on: evaluate each copy
                fallback_id += 1
                key = f"{key}#copy-{fallback_id}"
                pending[key] = [item]
            order.append((key, item.program))
            tiers[candidate_id] = "fresh"

        # The fidelity ladder (when attached) screens the fresh unique
        # programs at cheap rungs first; only the promoted pool reaches the
        # full-fidelity evaluation below.  ``screened`` carries the rung
        # results that become screened-out candidates' recorded evaluations
        # (empty in shadow mode, where everyone is still evaluated in full).
        final_order, screened, ladder_events = self._screen_ladder(order, pending, stats)
        if self._ladder_active():
            # The ladder pool was every memory-tier miss (the plain-key disk
            # lookup was deferred so the screening decisions are independent
            # of the store's state); resolve the promoted pool against the
            # disk tier now.
            stats.unique_evaluations = len(order)
            if use_store:
                final_order = self._resolve_from_store(
                    final_order, pending, tiers, stats
                )

        results = self._evaluate_many([program for _key, program in final_order], stats)
        for (key, _program), result in zip(final_order, results):
            # Transient failures (timeouts, dead workers) are not the
            # candidate's fault; never memoize or persist them.
            if self.config.memoize and not key.startswith("#") and not result.transient:
                base_key = _plain_key(key)
                self._memo[base_key] = result
                if use_store and self.store.put(base_key, result):
                    self.store_writes += 1
            for item in pending[key]:
                item.evaluation = result
        for key, result in screened:
            # A screened-out candidate's recorded result is its highest-rung
            # evaluation (fidelity < 1.0); it never enters the plain-key memo
            # or store, so it can never masquerade as a full-fidelity score.
            for item in pending[key]:
                item.evaluation = result
        if not use_store:
            # Without a disk tier every memory miss evaluates fresh.
            stats.unique_evaluations = len(order)

        self.cache_lookups += stats.eval_cache_lookups
        self.cache_hits += stats.eval_cache_hits
        self.unique_evaluations += stats.unique_evaluations
        self.store_lookups += stats.store_lookups
        self.store_hits += stats.store_hits
        self.rung_evaluations += stats.rung_evaluations
        self.rung_promotions += stats.rung_promotions
        self.rung_eliminations += stats.rung_eliminations
        self.screen_checks += stats.screen_checks
        self.screened += stats.screened

        if self.events:
            for event in screen_events:
                self.events.emit(event)
            for event in ladder_events:
                self.events.emit(event)
            for item in scored:
                if item.evaluation is None:
                    continue
                tier = tiers.get(item.candidate.candidate_id, "fresh")
                self.events.emit(
                    CandidateEvaluated(
                        candidate_id=item.candidate.candidate_id,
                        round_index=item.candidate.round_index,
                        origin=item.candidate.origin,
                        valid=item.valid,
                        score=item.evaluation.score,
                        cached=tier not in ("fresh", "screened"),
                        cache_tier=tier,
                        scenario_scores=dict(item.evaluation.scenario_scores),
                    )
                )
        return BatchResult(scored=scored, stats=stats)

    # -- fidelity ladder ----------------------------------------------------------

    def _ladder_active(self) -> bool:
        return self.fidelity is not None and bool(self.fidelity.screening_rungs)

    def _resolve_from_store(
        self,
        order: List[Tuple[str, Program]],
        pending: Dict[str, List[ScoredCandidate]],
        tiers: Dict[str, str],
        stats: BatchStats,
    ) -> List[Tuple[str, Program]]:
        """Serve ladder-promoted programs from the full-fidelity disk tier.

        Mirrors the inline lookup the non-ladder path does before
        evaluation; only called under ``use_store`` (dedup+memoize on, so
        every key is a plain canonical hash).
        """
        still_fresh: List[Tuple[str, Program]] = []
        for key, program in order:
            stats.store_lookups += 1
            stored = self.store.get(key)
            if stored is None:
                still_fresh.append((key, program))
                continue
            self._memo[key] = stored
            stats.store_hits += 1
            for position, item in enumerate(pending[key]):
                item.evaluation = stored
                if position == 0:
                    # Duplicates that joined the group keep their "memory"
                    # tier, exactly as on the non-ladder path.
                    tiers[item.candidate.candidate_id] = "disk"
        return still_fresh

    def _screen_ladder(
        self,
        order: List[Tuple[str, Program]],
        pending: Dict[str, List[ScoredCandidate]],
        stats: BatchStats,
    ) -> Tuple[
        List[Tuple[str, Program]],
        List[Tuple[str, EvaluationResult]],
        List[object],
    ]:
        """Successive halving over the batch's fresh unique programs.

        Walks the schedule's screening rungs: evaluate the surviving pool at
        the rung's fidelity, keep the top ``keep_count`` (score descending,
        submission order breaking ties), repeat.  Returns the
        ``(key, program)`` pairs still due a full-fidelity evaluation, the
        rung results assigned to screened-out keys, and the
        promotion/elimination events to publish.  In ``shadow`` mode the
        decisions (and their telemetry) are identical but every program is
        returned for full evaluation and nothing is screened out.
        """
        schedule = self.fidelity
        if schedule is None or not schedule.screening_rungs or len(order) <= 1:
            return order, [], []
        use_store = self.store is not None and self.config.dedup and self.config.memoize
        pool = list(range(len(order)))
        screened: List[Tuple[str, EvaluationResult]] = []
        events: List[object] = []
        # plan() owns the rung-skip rule (a rung that cannot eliminate is
        # pure overhead, in shadow mode too); the final full-fidelity step
        # is ours to execute below, not here.
        for rung_index, fraction, _pool_size in schedule.plan(len(order))[:-1]:
            rung_results = self._evaluate_rung(
                fraction, [order[index] for index in pool], stats, use_store
            )
            scores = [result.score for result in rung_results]
            survivors = set(schedule.select_survivors(scores))
            stats.rung_promotions += len(survivors)
            stats.rung_eliminations += len(pool) - len(survivors)
            next_pool: List[int] = []
            for position, order_index in enumerate(pool):
                key = order[order_index][0]
                representative = pending[key][0].candidate
                promoted = position in survivors
                event_cls = CandidatePromoted if promoted else CandidateEliminated
                events.append(
                    event_cls(
                        candidate_id=representative.candidate_id,
                        round_index=representative.round_index,
                        rung=rung_index,
                        fraction=fraction,
                        score=scores[position],
                        kept=len(survivors),
                        pool=len(pool),
                    )
                )
                if promoted:
                    next_pool.append(order_index)
                elif schedule.mode == "screen":
                    screened.append((key, rung_results[position]))
            pool = next_pool
        if schedule.mode == "shadow":
            return order, [], events
        return [order[index] for index in pool], screened, events

    def _evaluate_rung(
        self,
        fraction: float,
        subset: List[Tuple[str, Program]],
        stats: BatchStats,
        use_store: bool,
    ) -> List[EvaluationResult]:
        """Evaluate ``subset`` at one screening rung, through the memo tiers.

        Rung results live under fidelity-qualified keys -- in the in-memory
        memo (``<key>@f=<fraction>``) and, when a store is attached, under
        :meth:`~repro.core.store.BoundEvalStore.at_fidelity` -- so partial
        scores are reused across rounds and processes exactly like full ones
        without ever colliding with them.
        """
        evaluator = self._scaled_evaluator(fraction)
        rung_store = self.store.at_fidelity(fraction) if use_store else None
        results: List[Optional[EvaluationResult]] = [None] * len(subset)
        fresh: List[int] = []
        for position, (key, _program) in enumerate(subset):
            memo_key = self._rung_memo_key(key, fraction)
            if memo_key is not None and memo_key in self._memo:
                results[position] = self._memo[memo_key]
                continue
            if memo_key is not None and rung_store is not None:
                stored = rung_store.get(_plain_key(key))
                if stored is not None:
                    self._memo[memo_key] = stored
                    results[position] = stored
                    continue
            fresh.append(position)
        fresh_results = self._evaluate_many(
            [subset[position][1] for position in fresh],
            stats,
            evaluator=evaluator,
            fraction=fraction,
        )
        stats.rung_evaluations += len(fresh)
        for position, result in zip(fresh, fresh_results):
            result.fidelity = fraction
            memo_key = self._rung_memo_key(subset[position][0], fraction)
            if memo_key is not None and not result.transient:
                self._memo[memo_key] = result
                if rung_store is not None and rung_store.put(
                    _plain_key(subset[position][0]), result
                ):
                    self.store_writes += 1
            results[position] = result
        return results

    def _rung_memo_key(self, key: str, fraction: float) -> Optional[str]:
        if key.startswith("#") or not self.config.memoize:
            return None
        return f"{_plain_key(key)}@f={fraction!r}"

    # -- executors ----------------------------------------------------------------

    def close(self) -> None:
        """Shut down the executor backends (recreated lazily on next use)."""
        if self._executor is not None:
            self._harvest(self._executor)
            self._executor.close()
            self._executor = None
        self._close_rung_executors()

    def _close_rung_executors(self) -> None:
        for executor in self._rung_executors.values():
            self._harvest(executor)
            executor.close()
        self._rung_executors = {}

    def _harvest(self, executor) -> None:
        """Fold a distributed executor's fabric counters into the engine.

        Called before any executor is closed or discarded so the run's
        metadata record survives executor churn (backend switches, rung
        executors, engine close).
        """
        fabric = getattr(executor, "fabric_stats", None)
        if fabric is None:
            return
        record = fabric()
        if record is None:
            return
        if self.distributed is None:
            self.distributed = record
            return
        merged = self.distributed
        for key in ("tasks_dispatched", "tasks_reclaimed", "tasks_rescued"):
            merged[key] += record[key]
        merged["workers"].update(record["workers"])
        merged["workers_joined"] = len(merged["workers"])

    def _backend_name(self) -> str:
        # A single worker cannot fan out: run serially whatever the backend,
        # which also keeps the legacy max_workers=1 behaviour (no timeout,
        # no pool startup cost).  The distributed backend is the exception:
        # one worker process is a meaningful (and testable) deployment, and
        # external workers may join regardless of max_workers.
        if self.config.max_workers <= 1 and self.config.executor != "distributed":
            return "serial"
        return self.config.executor

    def _ensure_executor(self, backend: str):
        if self._executor is not None and self._executor.name != backend:
            self._harvest(self._executor)
            self._executor.close()
            self._executor = None
        if self._executor is None:
            self._executor = create_executor(backend, self.config, self.evaluator)
        return self._executor

    def _ensure_rung_executor(self, backend: str, fraction: float, evaluator: Evaluator):
        executor = self._rung_executors.get(fraction)
        if executor is not None and executor.name != backend:
            self._harvest(executor)
            executor.close()
            executor = None
        if executor is None:
            executor = create_executor(backend, self.config, evaluator)
            self._rung_executors[fraction] = executor
        return executor

    def _evaluate_many(
        self,
        programs: List[Program],
        stats: BatchStats,
        evaluator: Optional[Evaluator] = None,
        fraction: float = 1.0,
    ) -> List[EvaluationResult]:
        """Evaluate ``programs`` on the configured backend.

        ``evaluator`` overrides the engine's evaluator for fidelity-rung
        evaluation (``fraction`` keys the rung's dedicated executor, so e.g.
        a process pool ships each scaled evaluator to its workers once).
        """
        if not programs:
            return []
        backend = self._backend_name()
        if evaluator is None:
            evaluator = self.evaluator
            executor = self._ensure_executor(backend)
        else:
            executor = self._ensure_rung_executor(backend, fraction, evaluator)
        # Wire the run's event bus and the store view matching this
        # executor's evaluator: the distributed backend publishes fabric
        # events on the former and shares whole-candidate results through
        # the latter (workers warm-start each other); pool backends ignore
        # both.
        executor.events = self.events if self.events else None
        use_store = self.store is not None and self.config.dedup and self.config.memoize
        if not use_store:
            executor.bound_store = None
        elif fraction == 1.0:
            executor.bound_store = self.store
        else:
            executor.bound_store = self.store.at_fidelity(fraction)
        # Note: single-program batches still go through the configured
        # backend -- a serial shortcut would silently drop the timeout and
        # crash isolation.
        if backend != "serial" and isinstance(evaluator, MultiScenarioEvaluator):
            return self._evaluate_many_sharded(programs, evaluator, executor, stats)
        units = [
            EvalUnit(program=program, failure_score=evaluator.failure_score)
            for program in programs
        ]
        return executor.run_units(units, stats)

    def _evaluate_many_sharded(
        self,
        programs: List[Program],
        evaluator: MultiScenarioEvaluator,
        executor,
        stats: BatchStats,
    ) -> List[EvaluationResult]:
        """Fan candidate x scenario units over the executor, then recombine.

        Sharding at scenario granularity keeps the backend busy even for
        small batches (one slow scenario no longer serialises the others) and
        makes the per-candidate timeout a per-*scenario* timeout, preserving
        crash isolation at the finer grain.  ``combine`` is the same
        aggregation the serial path uses, so results are
        configuration-independent.
        """
        units = [
            EvalUnit(
                program=programs[program_index],
                scenario=scenario_index,
                failure_score=evaluator.scenario_failure_score(scenario_index),
            )
            for program_index in range(len(programs))
            for scenario_index in range(evaluator.scenario_count)
        ]
        flat = executor.run_units(units, stats)
        count = evaluator.scenario_count
        return [
            evaluator.combine(flat[start : start + count])
            for start in range(0, len(flat), count)
        ]
