"""PolicySmith reproduction.

A from-scratch Python implementation of *"Man-Made Heuristics Are Dead.
Long Live Code Generators!"* (HotNets '25): the PolicySmith framework for
LLM-driven synthesis of instance-optimal systems policies, plus every
substrate the paper's two case studies (web caching, congestion control)
depend on.

Package map
-----------

``repro.core``         the framework: Template / Generator / Checker /
                        Evaluator / evolutionary search / archive / contexts
``repro.dsl``          the heuristic mini-language candidates are written in
``repro.llm``          LLM client protocol + the offline synthetic generator
``repro.cache``        cache simulator, 16 eviction policies, the priority
                        Template, Table-1 features, oracles
``repro.traces``       synthetic CloudPhysics-like / MSR-like corpora
``repro.netsim``       discrete-event network simulator (link, flows)
``repro.cc``           congestion-control Template, kernel-constraint
                        checker, baselines, evaluator
``repro.experiments``  one module per paper table/figure, each registered as
                        a named spec + reducer in the experiment registry
``repro.cli``          the unified ``python -m repro`` frontend (run / sweep
                        / resume / experiments list / report)

Start with ``examples/quickstart.py``, ``python -m repro experiments list``,
or DESIGN.md.
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
