"""CloudPhysics-like corpus: 105 diverse VM block-I/O traces (synthetic).

The real CloudPhysics dataset (Waldspurger et al., FAST '15) contains 105
week-long traces collected from virtual machines running very different
applications.  What matters for the paper's experiments is the *diversity*:
different traces reward different eviction policies, which is what makes
instance-optimality interesting and what Table 2 measures.

Each synthetic trace draws its workload parameters from wide ranges seeded by
the trace index, producing a corpus that spans scan-heavy, churn-heavy and
Zipf-dominated behaviours with varying skew and object-size profiles.
Trace names follow the dataset's ``w<N>`` convention (``w01`` ... ``w105``)
so that the paper's "trace w89" has a concrete counterpart here.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.traces.synthetic import SyntheticWorkloadConfig

#: Number of traces in the corpus, matching the real dataset.
NUM_TRACES = 105

#: Corpus-level seed; combined with the trace index for per-trace seeds.
CORPUS_SEED = 202_501


def cloudphysics_config(
    index: int,
    num_requests: int = 6000,
    num_objects: int = 1500,
    corpus_seed: int = CORPUS_SEED,
) -> SyntheticWorkloadConfig:
    """Workload parameters for CloudPhysics-like trace ``w<index>`` (1-based)."""
    if not 1 <= index <= NUM_TRACES:
        raise ValueError(f"CloudPhysics trace index must be in [1, {NUM_TRACES}]")
    rng = np.random.default_rng(corpus_seed + index)

    # VM workloads range from databases (high skew, heavy reuse) to backup
    # jobs (almost pure scans); sample mixture weights accordingly.
    archetype = rng.choice(["zipf", "churn", "scan", "mixed"], p=[0.35, 0.30, 0.15, 0.20])
    if archetype == "zipf":
        weights = (0.65, 0.15, 0.08, 0.12)
    elif archetype == "churn":
        weights = (0.25, 0.55, 0.08, 0.12)
    elif archetype == "scan":
        weights = (0.30, 0.15, 0.45, 0.10)
    else:
        weights = (0.40, 0.25, 0.20, 0.15)
    jitter = rng.uniform(0.85, 1.15, size=4)
    zipf_w, churn_w, scan_w, recent_w = (w * j for w, j in zip(weights, jitter))

    return SyntheticWorkloadConfig(
        name=f"w{index:02d}",
        num_requests=num_requests,
        num_objects=int(num_objects * rng.uniform(0.7, 1.4)),
        seed=int(rng.integers(0, 2**31 - 1)),
        zipf_weight=float(zipf_w),
        churn_weight=float(churn_w),
        scan_weight=float(scan_w),
        recent_weight=float(recent_w),
        zipf_alpha=float(rng.uniform(0.6, 1.3)),
        working_set_fraction=float(rng.uniform(0.04, 0.15)),
        working_set_period=int(rng.integers(800, 2500)),
        scan_length=int(rng.integers(60, 250)),
        reuse_distance_scale=float(rng.uniform(30, 200)),
        size_log_mean=float(rng.uniform(8.6, 9.8)),
        size_log_sigma=float(rng.uniform(0.8, 1.4)),
    )


def trace_names(count: Optional[int] = None) -> List[str]:
    """Names of the corpus traces in order (``w01`` ...)."""
    total = NUM_TRACES if count is None else min(count, NUM_TRACES)
    return [f"w{i:02d}" for i in range(1, total + 1)]
