"""MSR-Cambridge-like corpus: 14 production-server traces (synthetic).

The real MSR Cambridge dataset (Narayanan et al., 2008) contains traces from
enterprise servers -- file servers, web proxies, source-control, printing --
each with a distinctive access pattern.  The synthetic stand-ins below give
each of the 14 traces a named server role with a hand-picked workload
archetype (rather than purely random parameters as in the CloudPhysics
corpus), which mirrors how the real MSR volumes differ from one another in
kind rather than degree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.traces.synthetic import SyntheticWorkloadConfig

CORPUS_SEED = 77_414

#: (name, archetype) pairs for the 14 servers, loosely following the real
#: dataset's volume names.
SERVER_ROLES: Tuple[Tuple[str, str], ...] = (
    ("proj", "churn"),
    ("prxy", "zipf"),
    ("src1", "churn"),
    ("src2", "mixed"),
    ("stg", "scan"),
    ("ts", "zipf"),
    ("usr", "mixed"),
    ("wdev", "churn"),
    ("web", "zipf"),
    ("hm", "mixed"),
    ("mds", "scan"),
    ("prn", "scan"),
    ("rsrch", "zipf"),
    ("proxy2", "churn"),
)

NUM_TRACES = len(SERVER_ROLES)

_ARCHETYPE_WEIGHTS: Dict[str, Tuple[float, float, float, float]] = {
    "zipf": (0.70, 0.12, 0.06, 0.12),
    "churn": (0.22, 0.58, 0.06, 0.14),
    "scan": (0.28, 0.14, 0.48, 0.10),
    "mixed": (0.42, 0.26, 0.18, 0.14),
}


def msr_config(
    index: int,
    num_requests: int = 8000,
    num_objects: int = 2000,
    corpus_seed: int = CORPUS_SEED,
) -> SyntheticWorkloadConfig:
    """Workload parameters for MSR-like trace ``index`` (1-based)."""
    if not 1 <= index <= NUM_TRACES:
        raise ValueError(f"MSR trace index must be in [1, {NUM_TRACES}]")
    name, archetype = SERVER_ROLES[index - 1]
    rng = np.random.default_rng(corpus_seed + index)
    zipf_w, churn_w, scan_w, recent_w = _ARCHETYPE_WEIGHTS[archetype]
    jitter = rng.uniform(0.9, 1.1, size=4)

    return SyntheticWorkloadConfig(
        name=f"msr-{name}",
        num_requests=num_requests,
        num_objects=int(num_objects * rng.uniform(0.8, 1.3)),
        seed=int(rng.integers(0, 2**31 - 1)),
        zipf_weight=float(zipf_w * jitter[0]),
        churn_weight=float(churn_w * jitter[1]),
        scan_weight=float(scan_w * jitter[2]),
        recent_weight=float(recent_w * jitter[3]),
        zipf_alpha=float(rng.uniform(0.75, 1.25)),
        working_set_fraction=float(rng.uniform(0.05, 0.12)),
        working_set_period=int(rng.integers(1000, 3000)),
        scan_length=int(rng.integers(80, 300)),
        reuse_distance_scale=float(rng.uniform(40, 150)),
        size_log_mean=float(rng.uniform(8.8, 10.0)),
        size_log_sigma=float(rng.uniform(0.7, 1.3)),
    )


def trace_names(count: Optional[int] = None) -> List[str]:
    """Names of the corpus traces in order."""
    total = NUM_TRACES if count is None else min(count, NUM_TRACES)
    return [f"msr-{SERVER_ROLES[i][0]}" for i in range(total)]
