"""Synthetic workload generators standing in for the paper's trace datasets.

The paper evaluates on two real block-I/O corpora -- CloudPhysics (105
week-long VM traces) and MSR Cambridge (14 production-server traces) --
which cannot be redistributed here.  This package generates synthetic
corpora with the structural properties those datasets are known for and that
the paper's results depend on: Zipfian object popularity, strong temporal
locality (churn), one-touch scan phases, heterogeneous object sizes, and --
crucially for instance-optimality experiments -- *diversity across traces*
within a corpus, so that different traces favour different eviction
policies.

See DESIGN.md ("Substitutions") for the full rationale.
"""

from repro.traces.synthetic import (
    SyntheticWorkloadConfig,
    generate_trace,
    zipf_weights,
)
from repro.traces.cloudphysics import (
    cloudphysics_config,
    cloudphysics_corpus,
    cloudphysics_trace,
)
from repro.traces.msr import msr_config, msr_corpus, msr_trace
from repro.traces.streaming import (
    CsvRequestSource,
    DecodedArraySource,
    StreamingTrace,
    TraceStats,
    open_csv_trace,
)

#: Deprecated loader entry points (``cloudphysics_trace`` / ``msr_trace`` /
#: ``*_corpus``): use the workload registry instead --
#: ``repro.workloads.build_trace("caching/cloudphysics", index=...)`` and
#: ``repro.workloads.corpus_traces(dataset, ...)``.  The ``*_config``
#: parameter sources and :func:`generate_trace` are the supported machinery
#: beneath both.

__all__ = [
    "SyntheticWorkloadConfig",
    "generate_trace",
    "zipf_weights",
    "cloudphysics_config",
    "cloudphysics_corpus",
    "cloudphysics_trace",
    "msr_config",
    "msr_corpus",
    "msr_trace",
    "CsvRequestSource",
    "DecodedArraySource",
    "StreamingTrace",
    "TraceStats",
    "open_csv_trace",
]
