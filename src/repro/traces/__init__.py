"""Synthetic workload generators standing in for the paper's trace datasets.

The paper evaluates on two real block-I/O corpora -- CloudPhysics (105
week-long VM traces) and MSR Cambridge (14 production-server traces) --
which cannot be redistributed here.  This package generates synthetic
corpora with the structural properties those datasets are known for and that
the paper's results depend on: Zipfian object popularity, strong temporal
locality (churn), one-touch scan phases, heterogeneous object sizes, and --
crucially for instance-optimality experiments -- *diversity across traces*
within a corpus, so that different traces favour different eviction
policies.

See DESIGN.md ("Substitutions") for the full rationale.
"""

from repro.traces.synthetic import (
    SyntheticWorkloadConfig,
    generate_trace,
    zipf_weights,
)
from repro.traces.cloudphysics import cloudphysics_config
from repro.traces.msr import msr_config
from repro.traces.streaming import (
    CsvRequestSource,
    DecodedArraySource,
    StreamingTrace,
    TraceStats,
    open_csv_trace,
)

#: The old loader entry points (``cloudphysics_trace`` / ``msr_trace`` /
#: ``*_corpus``) were removed after their one-release deprecation window:
#: use ``repro.workloads.build_trace("caching/cloudphysics", index=...)``
#: and ``repro.workloads.corpus_traces(dataset, ...)``.  The ``*_config``
#: parameter sources and :func:`generate_trace` remain the supported
#: machinery beneath the workload registry.

_REMOVED_LOADERS = {
    "cloudphysics_trace": 'repro.workloads.build_trace("caching/cloudphysics", index=...)',
    "msr_trace": 'repro.workloads.build_trace("caching/msr", index=...)',
    "cloudphysics_corpus": 'repro.workloads.corpus_traces("cloudphysics", ...)',
    "msr_corpus": 'repro.workloads.corpus_traces("msr", ...)',
}


def __getattr__(name: str):
    if name in _REMOVED_LOADERS:
        raise AttributeError(
            f"{name}() was removed; use {_REMOVED_LOADERS[name]} -- the "
            "workload registry is the canonical loader entry point"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SyntheticWorkloadConfig",
    "generate_trace",
    "zipf_weights",
    "cloudphysics_config",
    "msr_config",
    "CsvRequestSource",
    "DecodedArraySource",
    "StreamingTrace",
    "TraceStats",
    "open_csv_trace",
]
