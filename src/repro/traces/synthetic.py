"""Core synthetic block-I/O workload generator.

The generator composes four request sources, mixed per-request according to
configurable weights:

* **zipf** -- accesses drawn from a static Zipf popularity distribution over
  the object universe (classic skewed reuse);
* **churn** -- accesses concentrated on a *working set* window that slowly
  rotates through the universe, producing the "mostly repeated objects"
  behaviour Cacheus calls churn workloads;
* **scan** -- sequential one-touch sweeps over ranges of cold objects
  ("mostly new objects" / scan workloads);
* **recent** -- re-references of recently requested objects with a
  heavy-tailed reuse distance, adding short-term temporal locality.

Object sizes follow a quantised log-normal distribution (block I/O sizes
cluster around a few KiB with a heavy tail), fixed per object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.cache.request import Request, Trace


def zipf_weights(num_objects: int, alpha: float) -> np.ndarray:
    """Normalised Zipf(alpha) probabilities over ranks 1..num_objects."""
    if num_objects <= 0:
        raise ValueError("num_objects must be positive")
    ranks = np.arange(1, num_objects + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


@dataclass
class SyntheticWorkloadConfig:
    """Parameters of one synthetic trace.

    The defaults produce a laptop-scale trace (a few thousand requests) so
    that the full Figure 2 sweep over ~120 traces remains tractable; the
    structure, not the absolute length, is what the experiments need.
    """

    name: str = "synthetic"
    num_requests: int = 6000
    num_objects: int = 1500
    seed: int = 0

    # Mixture weights (normalised internally).
    zipf_weight: float = 0.45
    churn_weight: float = 0.30
    scan_weight: float = 0.15
    recent_weight: float = 0.10

    # Source-specific knobs.
    zipf_alpha: float = 0.9
    working_set_fraction: float = 0.08
    working_set_period: int = 1500
    scan_length: int = 120
    reuse_distance_scale: float = 80.0

    # Object sizes (bytes): quantised log-normal.
    size_log_mean: float = 9.2   # ~10 KiB median
    size_log_sigma: float = 1.1
    size_block: int = 512
    max_size: int = 1 << 22      # 4 MiB cap

    # Timestamp model: mean gap between requests (exponential).
    mean_interarrival: float = 10.0

    def mixture(self) -> np.ndarray:
        weights = np.array(
            [self.zipf_weight, self.churn_weight, self.scan_weight, self.recent_weight],
            dtype=np.float64,
        )
        if weights.sum() <= 0:
            raise ValueError("at least one mixture weight must be positive")
        if (weights < 0).any():
            raise ValueError("mixture weights must be non-negative")
        return weights / weights.sum()

    def validate(self) -> None:
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.num_objects <= 0:
            raise ValueError("num_objects must be positive")
        if not 0 < self.working_set_fraction <= 1:
            raise ValueError("working_set_fraction must be in (0, 1]")
        if self.scan_length <= 0:
            raise ValueError("scan_length must be positive")
        self.mixture()


def _object_sizes(config: SyntheticWorkloadConfig, rng: np.random.Generator) -> np.ndarray:
    """Per-object sizes, fixed for the duration of the trace."""
    raw = rng.lognormal(config.size_log_mean, config.size_log_sigma, config.num_objects)
    sizes = np.ceil(raw / config.size_block) * config.size_block
    sizes = np.clip(sizes, config.size_block, config.max_size)
    return sizes.astype(np.int64)


def generate_trace(config: SyntheticWorkloadConfig) -> Trace:
    """Generate a :class:`Trace` according to ``config`` (deterministic per seed)."""
    config.validate()
    rng = np.random.default_rng(config.seed)

    num_objects = config.num_objects
    sizes = _object_sizes(config, rng)
    zipf_probabilities = zipf_weights(num_objects, config.zipf_alpha)
    # Shuffle the rank->object mapping so that object ids carry no meaning.
    popularity_order = rng.permutation(num_objects)

    mixture = config.mixture()
    source_choices = rng.choice(4, size=config.num_requests, p=mixture)
    zipf_draws = rng.choice(num_objects, size=config.num_requests, p=zipf_probabilities)
    uniform_draws = rng.random(config.num_requests)
    gaps = rng.exponential(config.mean_interarrival, config.num_requests)

    working_set_size = max(8, int(num_objects * config.working_set_fraction))
    scan_cursor = 0
    scan_remaining = 0
    recent_keys: List[int] = []

    requests: List[Request] = []
    timestamp = 0.0
    for i in range(config.num_requests):
        timestamp += gaps[i]
        source = source_choices[i]

        if source == 0:  # zipf
            obj = int(popularity_order[zipf_draws[i]])
        elif source == 1:  # churn: rotating working-set window
            window_start = (i // config.working_set_period) * (working_set_size // 2)
            offset = int(uniform_draws[i] * working_set_size)
            obj = int((window_start + offset) % num_objects)
        elif source == 2:  # scan: sequential one-touch sweep
            if scan_remaining <= 0:
                scan_remaining = config.scan_length
                scan_cursor = int(uniform_draws[i] * num_objects)
            obj = int(scan_cursor % num_objects)
            scan_cursor += 1
            scan_remaining -= 1
        else:  # recent: heavy-tailed reuse of a recently requested object
            if recent_keys:
                distance = int(rng.exponential(config.reuse_distance_scale))
                distance = min(distance, len(recent_keys) - 1)
                obj = recent_keys[-1 - distance]
            else:
                obj = int(popularity_order[zipf_draws[i]])

        recent_keys.append(obj)
        if len(recent_keys) > 4096:
            del recent_keys[:2048]

        requests.append(
            Request(timestamp=int(timestamp), key=obj, size=int(sizes[obj]))
        )

    return Trace(requests, name=config.name)
