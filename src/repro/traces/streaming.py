"""Constant-memory streaming trace readers (chunked decode + reservoir stats).

File-backed traces used to be read by materialising every request into a
Python list (:meth:`~repro.cache.request.Trace.from_csv`): ~200 bytes per
request of live heap, per worker, for the whole run.  This module replaces
that with iterator-based readers whose peak additional memory is O(chunk):

* :class:`CsvRequestSource` -- re-iterable chunked CSV decoder: the file is
  read ``chunk_size`` bytes at a time, split into lines, and parsed straight
  into :class:`~repro.cache.request.Request` objects that are yielded (and
  collected) one by one;
* :class:`DecodedArraySource` -- the cached-decode fast path for *repeated*
  evaluation of the same trace: the CSV is decoded once into a columnar
  ``int64`` sidecar (``<trace>.reqcache.npy``) that later passes memory-map
  (``np.load(mmap_mode="r")``) and stream in row chunks, skipping text
  parsing entirely;
* :class:`StreamingTrace` -- the :class:`~repro.cache.request.Trace`-shaped
  facade over either source.  The statistics the experiment harness needs
  (footprint, unique objects, length) come from one streaming pass that also
  keeps a seeded reservoir sample of request sizes; the pass stores one
  integer per *unique* key, never the requests themselves.

Streaming and materialized reads are equivalent by construction -- the
property tests assert byte-identical request sequences and identical
simulator statistics on the bundled corpora.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.cache.request import Request, Trace

#: Default file-read granularity (bytes) for the CSV decoder.
DEFAULT_CHUNK_SIZE = 64 * 1024

#: Default row granularity for the memmapped fast path.
DEFAULT_CHUNK_ROWS = 8192

#: Suffixes of the cached-decode sidecar files.
CACHE_SUFFIX = ".reqcache.npy"
CACHE_META_SUFFIX = ".reqcache.json"

_CSV_HEADER = ("timestamp", "key", "size")


def _header_matches(line: str) -> bool:
    """Tolerate the whitespace variants ``Trace.from_csv`` accepts."""
    return tuple(field.strip() for field in line.split(",")) == _CSV_HEADER


class _ReservoirSampler:
    """Algorithm-R reservoir over a stream, with its own seeded RNG."""

    def __init__(self, capacity: int = 1024, seed: int = 0):
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._sample: list = []
        self._seen = 0

    def offer(self, value: int) -> None:
        self._seen += 1
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._sample[slot] = value

    @property
    def sample(self) -> Tuple[int, ...]:
        return tuple(self._sample)


@dataclass(frozen=True)
class TraceStats:
    """Whole-trace statistics from one streaming pass."""

    requests: int
    unique_objects: int
    footprint_bytes: int
    first_timestamp: int
    last_timestamp: int
    #: Seeded reservoir sample of request sizes (for approximate size
    #: distributions without a second pass).
    size_sample: Tuple[int, ...]


class CsvRequestSource:
    """Re-iterable chunked decoder for ``Trace.to_csv``-format files.

    Instances hold only the path and chunk size, so they pickle cheaply into
    process-pool workers; every iteration opens the file afresh.
    """

    def __init__(self, path: Union[str, Path], chunk_size: int = DEFAULT_CHUNK_SIZE):
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.path = Path(path)
        self.chunk_size = chunk_size

    def __iter__(self) -> Iterator[Request]:
        with self.path.open("r", encoding="utf-8", newline="") as handle:
            buffer = ""
            header_seen = False
            while True:
                chunk = handle.read(self.chunk_size)
                if not chunk:
                    break
                buffer += chunk
                lines = buffer.split("\n")
                buffer = lines.pop()
                for line in lines:
                    line = line.rstrip("\r")
                    if not line:
                        continue
                    if not header_seen:
                        header_seen = True
                        if not _header_matches(line):
                            raise ValueError(
                                f"trace file {self.path} has unexpected header {line!r}"
                            )
                        continue
                    yield self._parse(line)
            tail = buffer.rstrip("\r")
            if tail:
                if not header_seen:
                    if not _header_matches(tail):
                        raise ValueError(
                            f"trace file {self.path} has unexpected header {tail!r}"
                        )
                else:
                    yield self._parse(tail)
            elif not header_seen:
                raise ValueError(f"trace file {self.path} is empty")

    def _parse(self, line: str) -> Request:
        # int() tolerates surrounding whitespace, so "1, 2, 3" parses like
        # Trace.from_csv; quoting is not supported (to_csv never writes it --
        # all fields are integers).
        try:
            timestamp, key, size = line.split(",")
            return Request(timestamp=int(timestamp), key=int(key), size=int(size))
        except ValueError as exc:
            raise ValueError(f"malformed trace line in {self.path}: {line!r}") from exc


class DecodedArraySource:
    """Streams requests out of a columnar ``(3, N)`` int64 ``.npy`` sidecar.

    The array is opened with ``mmap_mode="r"`` on each iteration, so the OS
    pages data in and out on demand; Python-level live memory is one
    ``chunk_rows``-sized slice of each column.
    """

    def __init__(self, path: Union[str, Path], chunk_rows: int = DEFAULT_CHUNK_ROWS):
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        self.path = Path(path)
        self.chunk_rows = chunk_rows

    def _open(self) -> np.ndarray:
        data = np.load(self.path, mmap_mode="r")
        if data.ndim != 2 or data.shape[0] != 3:
            raise ValueError(
                f"decode cache {self.path} has shape {data.shape}, expected (3, N)"
            )
        return data

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``(timestamps, keys, sizes)`` int64 views of the sidecar.

        The rows alias the memory-mapped array directly; the fused columnar
        simulator iterates them without ever constructing Request objects.
        """
        data = self._open()
        return data[0], data[1], data[2]

    def __iter__(self) -> Iterator[Request]:
        data = self._open()
        total = data.shape[1]
        for start in range(0, total, self.chunk_rows):
            stop = min(start + self.chunk_rows, total)
            timestamps = data[0, start:stop].tolist()
            keys = data[1, start:stop].tolist()
            sizes = data[2, start:stop].tolist()
            for timestamp, key, size in zip(timestamps, keys, sizes):
                yield Request(timestamp=timestamp, key=key, size=size)


def ensure_decoded_cache(
    csv_path: Union[str, Path], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Path:
    """Build (or reuse) the columnar decode sidecar for ``csv_path``.

    The sidecar is invalidated by source size/mtime changes, recorded in a
    small metadata file next to it.  Building streams the CSV once through
    compact ``array('q')`` columns -- ~24 bytes per request, transient --
    instead of a Request-object list.
    """
    csv_path = Path(csv_path)
    cache_path = csv_path.with_name(csv_path.name + CACHE_SUFFIX)
    meta_path = csv_path.with_name(csv_path.name + CACHE_META_SUFFIX)
    stat = csv_path.stat()
    fingerprint = {"size": stat.st_size, "mtime_ns": stat.st_mtime_ns}
    if cache_path.exists() and meta_path.exists():
        try:
            if json.loads(meta_path.read_text(encoding="utf-8")) == fingerprint:
                return cache_path
        except (ValueError, OSError):
            pass
    timestamps, keys, sizes = array("q"), array("q"), array("q")
    for request in CsvRequestSource(csv_path, chunk_size=chunk_size):
        timestamps.append(request.timestamp)
        keys.append(request.key)
        sizes.append(request.size)
    data = np.empty((3, len(timestamps)), dtype=np.int64)
    data[0] = np.frombuffer(timestamps, dtype=np.int64)
    data[1] = np.frombuffer(keys, dtype=np.int64)
    data[2] = np.frombuffer(sizes, dtype=np.int64)
    # Write-then-rename so concurrent builders (sweep seeds sharing one csv
    # workload) never expose a half-written sidecar to a reader's mmap;
    # whichever rename lands last wins with identical content.
    fd, tmp_name = tempfile.mkstemp(
        dir=cache_path.parent, prefix=cache_path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.save(handle, data)
        os.replace(tmp_name, cache_path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fd, tmp_meta = tempfile.mkstemp(
        dir=meta_path.parent, prefix=meta_path.name, suffix=".tmp"
    )
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(fingerprint))
    os.replace(tmp_meta, meta_path)
    return cache_path


class StreamingTrace:
    """A :class:`~repro.cache.request.Trace`-shaped view over a request source.

    Iteration never materialises the request list; the statistics the
    simulator and the experiment harness need (``footprint_bytes`` for cache
    sizing, ``len``, ``unique_objects``) are computed once by a streaming
    pass whose live state is one integer per unique key plus a fixed-size
    reservoir, then cached on the instance.
    """

    def __init__(
        self,
        source,
        name: str = "trace",
        reservoir_size: int = 1024,
        stats_seed: int = 0,
    ):
        self.source = source
        self.name = name
        self.reservoir_size = reservoir_size
        self.stats_seed = stats_seed
        self._stats: Optional[TraceStats] = None

    def __iter__(self) -> Iterator[Request]:
        return iter(self.source)

    def columns(self) -> Optional[tuple]:
        """Struct-of-arrays form when the source provides one, else ``None``.

        Only :class:`DecodedArraySource` does (its sidecar *is* the columnar
        form, memory-mapped); plain CSV streaming returns ``None`` and the
        simulator uses the per-request loop.
        """
        source_columns = getattr(self.source, "columns", None)
        if callable(source_columns):
            return source_columns()
        return None

    # -- statistics ----------------------------------------------------------------

    @property
    def stats(self) -> TraceStats:
        if self._stats is None:
            self._stats = self._compute_stats()
        return self._stats

    def _compute_stats(self) -> TraceStats:
        max_sizes: Dict[int, int] = {}
        reservoir = _ReservoirSampler(self.reservoir_size, seed=self.stats_seed)
        count = 0
        first_timestamp = 0
        last_timestamp = 0
        for request in self:
            if count == 0:
                first_timestamp = request.timestamp
            last_timestamp = request.timestamp
            count += 1
            if request.size > max_sizes.get(request.key, 0):
                max_sizes[request.key] = request.size
            reservoir.offer(request.size)
        return TraceStats(
            requests=count,
            unique_objects=len(max_sizes),
            footprint_bytes=sum(max_sizes.values()),
            first_timestamp=first_timestamp,
            last_timestamp=last_timestamp,
            size_sample=reservoir.sample,
        )

    def __len__(self) -> int:
        return self.stats.requests

    def unique_objects(self) -> int:
        return self.stats.unique_objects

    def footprint_bytes(self) -> int:
        return self.stats.footprint_bytes

    def compulsory_miss_ratio(self) -> float:
        if self.stats.requests == 0:
            return 0.0
        return self.stats.unique_objects / self.stats.requests

    def duration(self) -> int:
        return self.stats.last_timestamp - self.stats.first_timestamp

    # -- conversion ----------------------------------------------------------------

    def materialize(self) -> Trace:
        """An in-memory :class:`Trace` with the same requests (tests, tools)."""
        return Trace(list(self), name=self.name)


def open_csv_trace(
    path: Union[str, Path],
    name: Optional[str] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    cache_decoded: bool = False,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> StreamingTrace:
    """Open a CSV trace for constant-memory streaming.

    ``cache_decoded=True`` selects the cached-decode fast path: the first
    open pays one decoding pass to build the columnar sidecar, and every
    later iteration (including in other processes) memory-maps it.
    """
    path = Path(path)
    if cache_decoded:
        source = DecodedArraySource(ensure_decoded_cache(path, chunk_size), chunk_rows)
    else:
        source = CsvRequestSource(path, chunk_size=chunk_size)
    return StreamingTrace(source, name=name or path.stem)
