"""Prompt construction and response parsing.

The prompt format mirrors the paper's description (§4.2.1): the Generator is
given a natural-language description of the Template interface and available
features, the function signature, the constraints, the best-performing
heuristics found so far as worked examples, and -- for repair attempts --
the Checker's error output ("stderr").

Candidate programs travel in fenced code blocks, so the response parser is a
simple, robust fence extractor.
"""

from __future__ import annotations

import re
from typing import List, Sequence, Tuple

from repro.core.template import Template
from repro.llm.client import ChatMessage

_FENCE_RE = re.compile(r"```(?:[a-zA-Z0-9_+-]*)\n(.*?)```", re.DOTALL)


def extract_code_blocks(text: str) -> List[str]:
    """Return the contents of every fenced code block in ``text``.

    If no fence is present but the text looks like a bare DSL program
    (starts with ``def``), the whole text is returned as a single block --
    LLMs do occasionally skip the fences.
    """
    blocks = [match.group(1).strip() for match in _FENCE_RE.finditer(text)]
    if blocks:
        return blocks
    stripped = text.strip()
    if stripped.startswith("def "):
        return [stripped]
    return []


class PromptBuilder:
    """Builds the system / user messages for generation and repair."""

    def __init__(self, template: Template, context_description: str = ""):
        self.template = template
        self.context_description = context_description

    # -- prompt pieces -----------------------------------------------------------

    def system_message(self) -> ChatMessage:
        lines = [
            "You are an expert systems developer synthesizing policy heuristics.",
            f"You are writing the body of `{self.template.signature()}`.",
            "",
            "Interface description:",
            self.template.description.strip(),
            "",
            "Constraints (the checker rejects violations):",
            self.template.constraint_text(),
            "",
            "Respond with each candidate as a complete function definition in a",
            "fenced code block.  Do not include commentary inside the code blocks.",
        ]
        if self.context_description:
            lines.insert(2, f"Deployment context: {self.context_description}")
        return ChatMessage(role="system", content="\n".join(lines))

    def generation_message(
        self,
        parents: Sequence[Tuple[str, float]],
        num_candidates: int,
    ) -> ChatMessage:
        """The per-round user message.

        ``parents`` is a list of ``(source, score)`` pairs -- the
        best-performing heuristics so far, shown as worked examples exactly as
        the paper's search loop does.
        """
        lines = [
            f"Propose {num_candidates} new candidate heuristics.",
            "Each candidate must be a complete function in its own code block.",
            "Aim to improve on the examples below; vary the structure, the",
            "features used and the constants rather than repeating them.",
            "",
        ]
        if parents:
            lines.append("Best-performing heuristics so far (higher score is better):")
            for index, (source, score) in enumerate(parents, start=1):
                lines.append(f"Example {index} (score {score:.6g}):")
                lines.append("```")
                lines.append(source.strip())
                lines.append("```")
                lines.append("")
        else:
            lines.append("No examples are available yet; start from first principles.")
        return ChatMessage(role="user", content="\n".join(lines))

    def repair_message(self, source: str, feedback: str) -> ChatMessage:
        """Message asking the Generator to fix a rejected candidate."""
        content = "\n".join(
            [
                "The following candidate was rejected by the checker.",
                "```",
                source.strip(),
                "```",
                "Checker output:",
                feedback.strip() or "(no details)",
                "",
                "Return a corrected version of this candidate in a single code block.",
                "Fix only what the checker complained about; keep the heuristic's intent.",
            ]
        )
        return ChatMessage(role="user", content=content)

    # -- convenience ---------------------------------------------------------------

    def generation_prompt(
        self, parents: Sequence[Tuple[str, float]], num_candidates: int
    ) -> List[ChatMessage]:
        return [self.system_message(), self.generation_message(parents, num_candidates)]

    def repair_prompt(self, source: str, feedback: str) -> List[ChatMessage]:
        return [self.system_message(), self.repair_message(source, feedback)]
