"""LLM client protocol and message types.

The protocol is deliberately minimal -- chat messages in, text completions
out, with token counts attached -- so that the framework does not care
whether the completions come from the offline synthetic generator, the
OpenAI API, or anything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence


@dataclass(frozen=True)
class ChatMessage:
    """One chat message.  ``role`` is ``"system"``, ``"user"`` or ``"assistant"``."""

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in ("system", "user", "assistant"):
            raise ValueError(f"unsupported chat role {self.role!r}")


@dataclass
class CompletionResponse:
    """One completion returned by a client."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    model: str

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


class LLMClient(Protocol):
    """Anything that can produce completions for a chat prompt."""

    #: Model identifier reported in responses / cost accounting.
    model: str

    def complete(
        self, messages: Sequence[ChatMessage], n: int = 1, temperature: float = 1.0
    ) -> List[CompletionResponse]:
        """Return ``n`` independent completions for the same prompt."""
        ...  # pragma: no cover - protocol
