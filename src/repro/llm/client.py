"""LLM client protocol, provider configuration and the resilience wrapper.

The protocol is deliberately minimal -- chat messages in, text completions
out, with token counts attached -- so that the framework does not care
whether the completions come from the offline synthetic generator, the
OpenAI API, or anything else.  On top of the one required ``complete()``
method the protocol grows two conveniences with default implementations
(``complete_batch`` for many prompts at once, ``complete_async`` for event
loops), a declarative :class:`ProviderConfig` block carried by
``RunSpec.llm["provider"]``, and :class:`ResilientClient` -- the wrapper a
real network provider is expected to live behind (bounded retries with
exponential backoff, optional per-call timeouts).

The offline synthetic client remains the only provider shipped with the
repository (and the CI path); :func:`wrap_client` is where a deployment
would splice a real API client into the same machinery.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    ThreadPoolExecutor,
    TimeoutError as _FutureTimeoutError,
)
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Protocol, Sequence


@dataclass(frozen=True)
class ChatMessage:
    """One chat message.  ``role`` is ``"system"``, ``"user"`` or ``"assistant"``."""

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in ("system", "user", "assistant"):
            raise ValueError(f"unsupported chat role {self.role!r}")


@dataclass
class CompletionResponse:
    """One completion returned by a client."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    model: str

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


class LLMError(Exception):
    """A client call failed for good (retries, if any, are exhausted)."""


class LLMTimeoutError(LLMError):
    """A client call exceeded its configured timeout."""


class LLMClient(Protocol):
    """Anything that can produce completions for a chat prompt.

    Only :meth:`complete` is required; the batch and async forms have
    default implementations that delegate to it, so a minimal client (the
    synthetic one, a test fake) satisfies the full protocol while a real
    provider may override them with genuinely batched / non-blocking
    transport.
    """

    #: Model identifier reported in responses / cost accounting.
    model: str

    def complete(
        self, messages: Sequence[ChatMessage], n: int = 1, temperature: float = 1.0
    ) -> List[CompletionResponse]:
        """Return ``n`` independent completions for the same prompt."""
        ...  # pragma: no cover - protocol

    def complete_batch(
        self,
        prompts: Sequence[Sequence[ChatMessage]],
        n: int = 1,
        temperature: float = 1.0,
    ) -> List[List[CompletionResponse]]:
        """Completions for many prompts; one response list per prompt."""
        return [self.complete(prompt, n=n, temperature=temperature) for prompt in prompts]

    async def complete_async(
        self, messages: Sequence[ChatMessage], n: int = 1, temperature: float = 1.0
    ) -> List[CompletionResponse]:
        """Awaitable form of :meth:`complete` (default: synchronous call)."""
        return self.complete(messages, n=n, temperature=temperature)


def complete_batch(
    client: "LLMClient",
    prompts: Sequence[Sequence[ChatMessage]],
    n: int = 1,
    temperature: float = 1.0,
) -> List[List[CompletionResponse]]:
    """Batch-complete through ``client``, whether or not it implements
    :meth:`LLMClient.complete_batch` (structural clients may predate it)."""
    native = getattr(client, "complete_batch", None)
    if native is not None:
        return native(prompts, n=n, temperature=temperature)
    return [client.complete(prompt, n=n, temperature=temperature) for prompt in prompts]


async def complete_async(
    client: "LLMClient",
    messages: Sequence[ChatMessage],
    n: int = 1,
    temperature: float = 1.0,
) -> List[CompletionResponse]:
    """Async-complete through ``client``, falling back to the sync call."""
    native = getattr(client, "complete_async", None)
    if native is not None:
        return await native(messages, n=n, temperature=temperature)
    return client.complete(messages, n=n, temperature=temperature)


# -- provider configuration ---------------------------------------------------------

#: Providers resolvable offline.  ``"synthetic"`` means "keep the client the
#: domain built" (the seeded offline generator); a deployment registers real
#: providers here.
KNOWN_PROVIDERS = ("synthetic",)


@dataclass
class ProviderConfig:
    """Declarative LLM provider block (``RunSpec.llm["provider"]``).

    ``name`` selects the provider (only ``"synthetic"`` ships offline);
    ``retries`` / ``timeout_s`` configure the :class:`ResilientClient`
    wrapper; ``batch_size`` caps how many completions one client call asks
    for (the pipelined search round streams generation in chunks of this
    size); ``prompt_cache`` is the on-disk prompt->completion cache
    directory (``None`` disables caching).
    """

    name: str = "synthetic"
    retries: int = 0
    timeout_s: Optional[float] = None
    batch_size: Optional[int] = None
    prompt_cache: Optional[str] = None

    def __post_init__(self) -> None:
        if self.name not in KNOWN_PROVIDERS:
            raise ValueError(
                f"unknown LLM provider {self.name!r}; "
                f"available: {sorted(KNOWN_PROVIDERS)}"
            )
        if self.retries < 0:
            raise ValueError("provider retries cannot be negative")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("provider timeout_s must be positive")
        if self.batch_size is not None and self.batch_size <= 0:
            raise ValueError("provider batch_size must be positive")

    @classmethod
    def from_ref(cls, ref: Any) -> Optional["ProviderConfig"]:
        """Build from a spec reference: ``None``, a bare provider name, or a
        ``{"name": ..., "retries": ..., ...}`` mapping."""
        if ref is None:
            return None
        if isinstance(ref, ProviderConfig):
            return ref
        if isinstance(ref, str):
            return cls(name=ref)
        if isinstance(ref, dict):
            known = {"name", "retries", "timeout_s", "batch_size", "prompt_cache"}
            unknown = set(ref) - known
            if unknown:
                raise ValueError(
                    f"unknown provider key(s) {sorted(unknown)}; "
                    f"allowed: {sorted(known)}"
                )
            return cls(**ref)
        raise ValueError(
            f"a provider reference must be a name or a mapping, got {type(ref).__name__}"
        )

    def to_ref(self) -> dict:
        return {
            "name": self.name,
            "retries": self.retries,
            "timeout_s": self.timeout_s,
            "batch_size": self.batch_size,
            "prompt_cache": self.prompt_cache,
        }


# -- resilience wrapper -------------------------------------------------------------


class ResilientClient:
    """Retries, timeouts and exponential backoff around any client.

    ``retries`` is the number of *re*-attempts after the first failure;
    ``timeout_s`` bounds each attempt (enforced on a single-use worker
    thread, which is abandoned on expiry -- threads cannot be killed).
    Failed attempts back off exponentially: ``backoff_s * 2**attempt``
    seconds before attempt 1, 2, ...  ``sleep`` / ``clock`` are injectable
    for tests.

    A timeout abandons the inner call mid-flight, so a *stateful* client
    (the synthetic RNG one) may be left with partially-consumed state; use
    timeouts for network providers, where the abandoned request is
    server-side and the client object itself stays consistent.
    """

    def __init__(
        self,
        inner: LLMClient,
        retries: int = 2,
        timeout_s: Optional[float] = None,
        backoff_s: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if retries < 0:
            raise ValueError("retries cannot be negative")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if backoff_s < 0:
            raise ValueError("backoff_s cannot be negative")
        self.inner = inner
        self.retries = retries
        self.timeout_s = timeout_s
        self.backoff_s = backoff_s
        self._sleep = sleep
        # Telemetry: attempts made and failures absorbed over the lifetime.
        self.attempts = 0
        self.failures = 0

    @property
    def model(self) -> str:
        return self.inner.model

    def __getattr__(self, name: str) -> Any:
        # State capture (get_state/set_state), usage counters etc. pass
        # through to the wrapped client.
        return getattr(self.inner, name)

    def complete(
        self, messages: Sequence[ChatMessage], n: int = 1, temperature: float = 1.0
    ) -> List[CompletionResponse]:
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._sleep(self.backoff_s * (2 ** (attempt - 1)))
            self.attempts += 1
            try:
                return self._attempt(messages, n, temperature)
            except Exception as exc:  # noqa: BLE001 - provider boundary
                self.failures += 1
                last_error = exc
        if isinstance(last_error, LLMError):
            raise last_error
        raise LLMError(
            f"client call failed after {self.retries + 1} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        ) from last_error

    def complete_batch(
        self,
        prompts: Sequence[Sequence[ChatMessage]],
        n: int = 1,
        temperature: float = 1.0,
    ) -> List[List[CompletionResponse]]:
        # Per-prompt retry granularity: one flaky prompt must not force the
        # whole batch to be re-requested.
        return [self.complete(prompt, n=n, temperature=temperature) for prompt in prompts]

    async def complete_async(
        self, messages: Sequence[ChatMessage], n: int = 1, temperature: float = 1.0
    ) -> List[CompletionResponse]:
        return self.complete(messages, n=n, temperature=temperature)

    def _attempt(
        self, messages: Sequence[ChatMessage], n: int, temperature: float
    ) -> List[CompletionResponse]:
        if self.timeout_s is None:
            return self.inner.complete(messages, n=n, temperature=temperature)
        pool = ThreadPoolExecutor(max_workers=1)
        future = pool.submit(self.inner.complete, messages, n=n, temperature=temperature)
        try:
            result = future.result(timeout=self.timeout_s)
        except _FutureTimeoutError:
            future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            raise LLMTimeoutError(
                f"client call timed out after {self.timeout_s}s"
            ) from None
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=False)
        return result


def wrap_client(client: LLMClient, provider: Optional[ProviderConfig]) -> LLMClient:
    """Layer the provider block's machinery around a base client.

    Resilience wraps the client first, the prompt cache outermost, so a
    cache hit costs neither a network attempt nor a retry loop.  With no
    provider block (or an all-default one) the client passes through
    untouched.
    """
    if provider is None:
        return client
    wrapped = client
    if provider.retries > 0 or provider.timeout_s is not None:
        wrapped = ResilientClient(
            wrapped, retries=provider.retries, timeout_s=provider.timeout_s
        )
    if provider.prompt_cache:
        from repro.llm.cache import CachingClient, PromptCache

        wrapped = CachingClient(wrapped, PromptCache(provider.prompt_cache))
    return wrapped
