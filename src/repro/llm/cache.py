"""On-disk prompt->completion cache: the LLM-side twin of the eval store.

Real providers charge per token and per second; re-running a sweep (or
resuming a crashed one) should not re-pay for completions the process has
already been given.  This module persists every client call under a
content address, reusing the eval store's defensive disk machinery
(:class:`~repro.core.store.ContentAddressedStore`): atomic temp-file +
rename writes, any-malformed-entry-is-a-miss reads, mtime touch on hit and
LRU garbage collection (``repro store gc --prompt-cache``).

Keying
------
An entry is addressed by the SHA-256 of the canonical JSON of everything
that determines a completion:

* the **model** identifier and the full message list (roles + content);
* the **sampling parameters** (``n``, ``temperature``);
* for *stateful* clients (the synthetic generator, whose completions are a
  seeded RNG stream), a **state fingerprint** -- the SHA-256 of the
  client's ``get_state()`` snapshot.  Each entry also records the state
  *after* the call, which a hit restores via ``set_state()``; replaying a
  run against a warm cache therefore reproduces the exact RNG trajectory,
  byte for byte, that a cold run produces.  Stateless clients (real APIs)
  omit the fingerprint, so identical prompts hit across unrelated runs.

Schema bumps (:data:`PROMPT_CACHE_SCHEMA_VERSION`) orphan old entries
rather than misreading them, exactly like the eval store.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, List, Optional, Sequence

from repro.core.store import ContentAddressedStore
from repro.llm.client import ChatMessage, CompletionResponse

#: Version of the on-disk entry payload; readers ignore entries written by
#: any other schema (bump on breaking changes to the payload layout).
PROMPT_CACHE_SCHEMA_VERSION = 1

#: Default directory name for the prompt cache under an artifact root.
PROMPT_CACHE_DIRNAME = "promptcache"

_ENTRY_SUFFIX = ".json"


def state_fingerprint(state: Any) -> str:
    """Content hash of a client state snapshot (must be JSON-safe)."""
    blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def prompt_key(
    model: str,
    messages: Sequence[ChatMessage],
    n: int,
    temperature: float,
    fingerprint: Optional[str] = None,
) -> str:
    """The content address of one client call.

    ``repr(temperature)`` joins the canonical form (not the float itself)
    so that e.g. ``1`` and ``1.0`` key distinctly from ``0.9999...`` without
    trusting JSON float formatting across platforms.
    """
    canonical = {
        "model": model,
        "messages": [{"role": m.role, "content": m.content} for m in messages],
        "n": n,
        "temperature": repr(float(temperature)),
        "state": fingerprint,
    }
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class PromptCache(ContentAddressedStore):
    """Disk-backed prompt->completions entries under one root directory."""

    schema_version = PROMPT_CACHE_SCHEMA_VERSION

    # -- addressing ---------------------------------------------------------------

    def entry_path(self, key: str) -> "Any":
        if not key:
            raise ValueError("prompt-cache entries need a non-empty key")
        return self.schema_root / key[:2] / f"{key}{_ENTRY_SUFFIX}"

    # -- reads --------------------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The stored entry, or ``None`` on miss *or any* malformed entry.

        A valid entry is ``{"responses": [CompletionResponse fields, ...],
        "state_after": <snapshot or None>}``.  Truncated JSON, a schema
        mismatch, a key echo mismatch or a malformed response list all
        degrade to a miss -- a wrong completion is impossible, only a
        re-request.
        """
        path = self.entry_path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self.corrupt_reads += 1
            return None
        try:
            if payload["schema_version"] != self.schema_version:
                return None
            if payload["key"] != key:
                # A moved/renamed file must not resurface under the wrong key.
                self.corrupt_reads += 1
                return None
            responses = payload["responses"]
            if not isinstance(responses, list) or not responses:
                raise ValueError("empty or non-list responses")
            for item in responses:
                if not isinstance(item["text"], str):
                    raise ValueError("non-string completion text")
                int(item["prompt_tokens"])
                int(item["completion_tokens"])
                if not isinstance(item["model"], str):
                    raise ValueError("non-string model")
        except Exception:  # noqa: BLE001 - any malformed entry is a miss
            self.corrupt_reads += 1
            return None
        self._touch(path)
        return {"responses": responses, "state_after": payload.get("state_after")}

    # -- writes -------------------------------------------------------------------

    def put(
        self,
        key: str,
        responses: Sequence[CompletionResponse],
        state_after: Optional[dict] = None,
    ) -> bool:
        """Persist one call's completions; returns False when nothing stored.

        Like the eval store, a filesystem-level failure (read-only root,
        disk full) must never abort the search -- the cache degrades to
        pass-through.
        """
        path = self.entry_path(key)
        payload = {
            "schema_version": self.schema_version,
            "key": key,
            "responses": [
                {
                    "text": r.text,
                    "prompt_tokens": r.prompt_tokens,
                    "completion_tokens": r.completion_tokens,
                    "model": r.model,
                }
                for r in responses
            ],
            "state_after": state_after,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_write_text(path, json.dumps(payload, sort_keys=True))
        except OSError:
            self.write_errors += 1
            return False
        self._note_put()
        return True


class CachingClient:
    """Memoizes any client's calls through a :class:`PromptCache`.

    For a client exposing ``get_state``/``set_state`` (the synthetic
    generator) the cache key includes the state fingerprint and a hit
    restores the recorded post-call state, so cold-cache, warm-cache and
    cache-disabled runs all produce the identical completion stream.  For a
    stateless client the entry is purely content-addressed, which is what
    makes repeated prompts (or re-runs) free.
    """

    def __init__(self, inner: Any, cache: PromptCache):
        self.inner = inner
        self.cache = cache
        # Telemetry over the client's lifetime.
        self.hits = 0
        self.misses = 0

    @property
    def model(self) -> str:
        return self.inner.model

    def __getattr__(self, name: str) -> Any:
        # get_state/set_state, usage counters etc. pass through.
        return getattr(self.inner, name)

    def _stateful(self) -> bool:
        return callable(getattr(self.inner, "get_state", None)) and callable(
            getattr(self.inner, "set_state", None)
        )

    def complete(
        self, messages: Sequence[ChatMessage], n: int = 1, temperature: float = 1.0
    ) -> List[CompletionResponse]:
        stateful = self._stateful()
        fingerprint = state_fingerprint(self.inner.get_state()) if stateful else None
        key = prompt_key(self.inner.model, messages, n, temperature, fingerprint)
        entry = self.cache.get(key)
        if entry is not None and not (stateful and entry["state_after"] is None):
            self.hits += 1
            if stateful:
                self.inner.set_state(entry["state_after"])
            return [
                CompletionResponse(
                    text=item["text"],
                    prompt_tokens=int(item["prompt_tokens"]),
                    completion_tokens=int(item["completion_tokens"]),
                    model=item["model"],
                )
                for item in entry["responses"]
            ]
        self.misses += 1
        responses = self.inner.complete(messages, n=n, temperature=temperature)
        state_after = self.inner.get_state() if stateful else None
        self.cache.put(key, responses, state_after)
        return responses

    def complete_batch(
        self,
        prompts: Sequence[Sequence[ChatMessage]],
        n: int = 1,
        temperature: float = 1.0,
    ) -> List[List[CompletionResponse]]:
        # Per-prompt so each prompt caches (and hits) independently.
        return [self.complete(prompt, n=n, temperature=temperature) for prompt in prompts]

    async def complete_async(
        self, messages: Sequence[ChatMessage], n: int = 1, temperature: float = 1.0
    ) -> List[CompletionResponse]:
        return self.complete(messages, n=n, temperature=temperature)
