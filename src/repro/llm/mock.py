"""Offline synthetic LLM client.

``SyntheticLLMClient`` replaces the paper's GPT-4o-mini Generator so the full
PolicySmith pipeline runs without network access (see DESIGN.md,
"Substitutions").  It behaves like an LLM in the ways the framework cares
about:

* it reads the same prompts the real client would receive and extracts the
  parent examples embedded in them -- candidate quality therefore improves
  across rounds through exactly the prompt-feedback channel the paper uses;
* it produces candidate programs by remixing parents (mutation, crossover),
  sampling the Template grammar, and instantiating a configurable set of
  archetype heuristics -- which is the paper's characterisation of what LLMs
  do well ("remixing and adapting known techniques");
* it *hallucinates*: with configurable probability it emits syntax errors,
  floating-point arithmetic, unguarded divisions and unbounded loops, which
  is what exercises the Checker/repair loop and reproduces the §5.0.3
  compilation-rate experiment;
* on repair prompts it fixes the reported issues with a configurable success
  probability, mirroring "an additional 19% compiled after the Generator was
  provided with the stderr";
* it meters prompt/completion tokens so §4.2.6 cost accounting works.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.dsl.ast import BinOp, Call, ForRange, Name, Number, Program, While
from repro.dsl.codegen import to_source
from repro.dsl.errors import DslError, DslSyntaxError
from repro.dsl.grammar import FeatureSpec, GrammarConfig, random_program
from repro.dsl.mutation import MutationConfig, crossover, mutate
from repro.dsl.parser import parse
from repro.llm.client import ChatMessage, CompletionResponse
from repro.llm.prompts import extract_code_blocks
from repro.llm.tokens import UsageTracker, count_tokens


@dataclass
class SyntheticLLMConfig:
    """Failure-mode and remixing knobs for the synthetic client.

    The defaults are tuned so that a caching-style Template sees roughly the
    paper's ~92 % first-pass compile rate; the congestion-control case study
    constructs the client with kernel-style rates (more float arithmetic and
    unguarded division) to land near the reported 63 %.
    """

    # Candidate-source mixture when parents are available.
    mutate_weight: float = 0.45
    crossover_weight: float = 0.20
    fresh_weight: float = 0.20
    archetype_weight: float = 0.15

    # Hallucination rates.
    syntax_error_rate: float = 0.05
    float_injection_rate: float = 0.02
    unguarded_division_rate: float = 0.02
    unbounded_loop_rate: float = 0.01

    # Repair behaviour.
    repair_success_rate: float = 0.80

    #: Archetype heuristics (DSL source) the client may instantiate verbatim
    #: or lightly mutate; supplied by the case study.
    archetypes: List[str] = field(default_factory=list)


class SyntheticLLMClient:
    """Grammar + remixing generator behind the :class:`LLMClient` protocol."""

    model = "synthetic-policysmith-1"

    def __init__(
        self,
        spec: FeatureSpec,
        config: Optional[SyntheticLLMConfig] = None,
        seed: int = 0,
        grammar: Optional[GrammarConfig] = None,
        mutation: Optional[MutationConfig] = None,
    ):
        self.spec = spec
        self.config = config or SyntheticLLMConfig()
        self.grammar = grammar or GrammarConfig()
        self.mutation = mutation or MutationConfig()
        self.usage = UsageTracker()
        self._rng = random.Random(seed)
        self._archetype_programs: List[Program] = []
        for source in self.config.archetypes:
            try:
                self._archetype_programs.append(parse(source))
            except DslSyntaxError as exc:  # pragma: no cover - config error
                raise ValueError(f"invalid archetype source: {exc}") from exc

    # -- checkpointing ---------------------------------------------------------------

    def get_state(self) -> dict:
        """JSON-safe snapshot of the client's RNG and usage counters.

        Restoring this state (``set_state``) makes a resumed search generate
        the exact completions an uninterrupted run would have produced.
        """
        version, internal, gauss = self._rng.getstate()
        return {
            "rng": [version, list(internal), gauss],
            "usage": {
                "prompt_tokens": self.usage.prompt_tokens,
                "completion_tokens": self.usage.completion_tokens,
                "calls": self.usage.calls,
            },
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        version, internal, gauss = state["rng"]
        self._rng.setstate((version, tuple(internal), gauss))
        usage = state.get("usage", {})
        self.usage.prompt_tokens = int(usage.get("prompt_tokens", 0))
        self.usage.completion_tokens = int(usage.get("completion_tokens", 0))
        self.usage.calls = int(usage.get("calls", 0))

    # -- LLMClient protocol ----------------------------------------------------------

    def complete(
        self, messages: Sequence[ChatMessage], n: int = 1, temperature: float = 1.0
    ) -> List[CompletionResponse]:
        prompt_text = "\n".join(m.content for m in messages)
        prompt_tokens = count_tokens(prompt_text)
        user_text = "\n".join(m.content for m in messages if m.role == "user")
        is_repair = "rejected by the checker" in user_text

        responses: List[CompletionResponse] = []
        for _ in range(max(1, n)):
            if is_repair:
                text = self._repair_response(user_text)
            else:
                text = self._generation_response(user_text, temperature)
            completion_tokens = count_tokens(text)
            self.usage.record(prompt_tokens, completion_tokens)
            responses.append(
                CompletionResponse(
                    text=text,
                    prompt_tokens=prompt_tokens,
                    completion_tokens=completion_tokens,
                    model=self.model,
                )
            )
        return responses

    def complete_batch(
        self,
        prompts: Sequence[Sequence[ChatMessage]],
        n: int = 1,
        temperature: float = 1.0,
    ) -> List[List[CompletionResponse]]:
        # Sequential on purpose: the RNG stream must advance prompt by
        # prompt, exactly as repeated complete() calls would.
        return [self.complete(prompt, n=n, temperature=temperature) for prompt in prompts]

    async def complete_async(
        self, messages: Sequence[ChatMessage], n: int = 1, temperature: float = 1.0
    ) -> List[CompletionResponse]:
        return self.complete(messages, n=n, temperature=temperature)

    # -- generation ---------------------------------------------------------------------

    def _parse_parents(self, user_text: str) -> List[Program]:
        parents: List[Program] = []
        for block in extract_code_blocks(user_text):
            try:
                parents.append(parse(block))
            except DslError:
                continue
        return parents

    def _pick_source_kind(self, have_parents: bool) -> str:
        cfg = self.config
        if not have_parents:
            weights = [("fresh", cfg.fresh_weight + cfg.mutate_weight), ("archetype", cfg.archetype_weight + cfg.crossover_weight)]
        else:
            weights = [
                ("mutate", cfg.mutate_weight),
                ("crossover", cfg.crossover_weight),
                ("fresh", cfg.fresh_weight),
                ("archetype", cfg.archetype_weight),
            ]
        total = sum(w for _k, w in weights)
        pick = self._rng.random() * total
        cumulative = 0.0
        for kind, weight in weights:
            cumulative += weight
            if pick <= cumulative:
                return kind
        return weights[-1][0]

    def _ensure_result_var_defined(self, program: Program) -> Program:
        """Prepend ``result_var = 0`` when remixing orphaned an accumulator.

        Mutation and crossover can produce code that updates the score
        variable without ever initialising it; a competent LLM essentially
        never makes that mistake, so the synthetic client patches it up
        rather than inflating the checker-failure rate with an unrealistic
        error mode (the *realistic* modes are injected separately).
        """
        from repro.dsl.ast import Assign

        if self.spec.result_var in program.free_names():
            program.body.insert(
                0, Assign(target=Name(id=self.spec.result_var), value=Number(value=0))
            )
        return program

    def _draft_program(self, parents: List[Program]) -> Program:
        program = self._draft_program_inner(parents)
        return self._ensure_result_var_defined(program)

    def _draft_program_inner(self, parents: List[Program]) -> Program:
        kind = self._pick_source_kind(bool(parents))
        if kind == "mutate" and parents:
            parent = self._rng.choice(parents)
            return mutate(parent, self.spec, self._rng, self.mutation, self.grammar)
        if kind == "crossover" and len(parents) >= 2:
            first, second = self._rng.sample(parents, 2)
            child = crossover(first, second, self._rng)
            if self._rng.random() < 0.5:
                child = mutate(child, self.spec, self._rng, self.mutation, self.grammar)
            return child
        if kind == "archetype" and self._archetype_programs:
            base = self._rng.choice(self._archetype_programs).clone()
            assert isinstance(base, Program)
            if self._rng.random() < 0.7:
                base = mutate(base, self.spec, self._rng, self.mutation, self.grammar)
            return base
        if parents and kind == "mutate":
            return mutate(self._rng.choice(parents), self.spec, self._rng, self.mutation, self.grammar)
        return random_program(self.spec, self._rng, self.grammar)

    def _generation_response(self, user_text: str, temperature: float) -> str:
        parents = self._parse_parents(user_text)
        program = self._draft_program(parents)
        source = to_source(program)
        source = self._maybe_hallucinate(source, program)
        return f"Here is a candidate heuristic:\n```\n{source.strip()}\n```\n"

    # -- hallucination ------------------------------------------------------------------

    def _maybe_hallucinate(self, source: str, program: Program) -> str:
        rng = self._rng
        cfg = self.config
        mutated = False

        if rng.random() < cfg.float_injection_rate:
            program = self._inject_float(program)
            mutated = True
        if rng.random() < cfg.unguarded_division_rate:
            program = self._inject_unguarded_division(program)
            mutated = True
        if rng.random() < cfg.unbounded_loop_rate:
            program = self._inject_unbounded_loop(program)
            mutated = True
        if mutated:
            source = to_source(program)
        if rng.random() < cfg.syntax_error_rate:
            source = self._inject_syntax_error(source)
        return source

    def _inject_float(self, program: Program) -> Program:
        clone = program.clone()
        assert isinstance(clone, Program)
        numbers = [n for n in clone.walk() if isinstance(n, Number) and isinstance(n.value, int)]
        if numbers:
            target = self._rng.choice(numbers)
            target.value = float(target.value) * self._rng.choice([0.5, 1.5, 0.125])
        return clone

    def _inject_unguarded_division(self, program: Program) -> Program:
        clone = program.clone()
        assert isinstance(clone, Program)
        binops = [n for n in clone.walk() if isinstance(n, BinOp) and n.op in ("+", "-", "*")]
        sources = self.spec.numeric_sources()
        if binops and sources:
            target = self._rng.choice(binops)
            param, attr = self._rng.choice(sources)
            divisor: object
            if attr is None:
                divisor = Name(id=param)
            else:
                from repro.dsl.ast import Attribute

                divisor = Attribute(value=Name(id=param), attr=attr)
            target.op = "//" if self.spec.integer_only else "/"
            target.right = divisor  # type: ignore[assignment]
        return clone

    def _inject_unbounded_loop(self, program: Program) -> Program:
        clone = program.clone()
        assert isinstance(clone, Program)
        loop = While(
            condition=Name(id=self.spec.result_var),
            body=[],
        )
        from repro.dsl.ast import AugAssign

        loop.body = [
            AugAssign(target=Name(id=self.spec.result_var), op="-", value=Number(value=1))
        ]
        insert_at = max(0, len(clone.body) - 1)
        clone.body.insert(insert_at, loop)
        return clone

    def _inject_syntax_error(self, source: str) -> str:
        rng = self._rng
        choice = rng.random()
        if choice < 0.4 and "}" in source:
            index = source.rfind("}")
            return source[:index] + source[index + 1 :]
        if choice < 0.7 and "(" in source:
            index = source.find("(")
            return source[:index] + source[index + 1 :]
        lines = source.splitlines()
        if len(lines) > 2:
            position = rng.randrange(1, len(lines) - 1)
            lines[position] = lines[position] + " $$"
            return "\n".join(lines)
        return source + "\nextra junk"

    # -- repair ------------------------------------------------------------------------

    _REJECTED_RE = re.compile(r"```\n(.*?)```", re.DOTALL)

    def _repair_response(self, user_text: str) -> str:
        blocks = extract_code_blocks(user_text)
        rejected = blocks[0] if blocks else ""
        feedback = user_text.split("Checker output:", 1)[-1]
        if self._rng.random() > self.config.repair_success_rate:
            # The model fails to fix it: return the same (or near-same) code.
            return f"```\n{rejected.strip()}\n```\n"
        repaired = self._repair_source(rejected, feedback)
        return f"```\n{repaired.strip()}\n```\n"

    def _repair_source(self, source: str, feedback: str) -> str:
        try:
            program = parse(source)
        except DslError:
            # Unfixable text: rewrite from scratch, which is what an LLM
            # typically does when its own output will not parse.
            return to_source(random_program(self.spec, self._rng, self.grammar))
        program = self._fix_floats(program)
        program = self._fix_divisions(program)
        program = self._fix_loops(program)
        return to_source(program)

    def _fix_floats(self, program: Program) -> Program:
        clone = program.clone()
        assert isinstance(clone, Program)
        for node in clone.walk():
            if isinstance(node, Number) and isinstance(node.value, float):
                node.value = max(1, int(round(node.value)))
            if isinstance(node, BinOp) and node.op == "/" and self.spec.integer_only:
                node.op = "//"
        return clone

    def _fix_divisions(self, program: Program) -> Program:
        clone = program.clone()
        assert isinstance(clone, Program)
        for node in clone.walk():
            if isinstance(node, BinOp) and node.op in ("/", "//", "%"):
                divisor = node.right
                if not (isinstance(divisor, Number) and divisor.value != 0):
                    node.right = Call(
                        func=Name(id="max"), args=[Number(value=1), divisor]
                    )
        return clone

    def _fix_loops(self, program: Program) -> Program:
        clone = program.clone()
        assert isinstance(clone, Program)

        def fix_block(stmts: list) -> list:
            fixed = []
            for stmt in stmts:
                if isinstance(stmt, While):
                    fixed.append(
                        ForRange(var=Name(id="i"), limit=Number(value=8), body=stmt.body)
                    )
                elif isinstance(stmt, ForRange) and not isinstance(stmt.limit, Number):
                    stmt.limit = Number(value=8)
                    fixed.append(stmt)
                else:
                    fixed.append(stmt)
            return fixed

        clone.body = fix_block(clone.body)
        for node in clone.walk():
            if hasattr(node, "body") and isinstance(getattr(node, "body"), list):
                node.body = fix_block(node.body)
            if hasattr(node, "orelse") and isinstance(getattr(node, "orelse"), list):
                node.orelse = fix_block(node.orelse)
        return clone
