"""LLM layer: client protocol, prompts, token accounting and the offline
synthetic generator.

The paper drives GPT-4o-mini through the OpenAI API.  This reproduction has
no network access, so :class:`~repro.llm.mock.SyntheticLLMClient` stands in:
it consumes the very same prompts (Template description, constraints, parent
examples, checker feedback), produces candidate programs by remixing the
parents and sampling the Template grammar, injects realistic failure modes
(float arithmetic in kernel code, unguarded division, syntax slips), and
meters token usage against the GPT-4o-mini price sheet.  Any client
implementing :class:`~repro.llm.client.LLMClient` -- e.g. a real OpenAI or
Anthropic client -- can be swapped in without touching the framework.
"""

from repro.llm.client import (
    ChatMessage,
    CompletionResponse,
    LLMClient,
    LLMError,
    LLMTimeoutError,
    ProviderConfig,
    ResilientClient,
    wrap_client,
)
from repro.llm.tokens import UsageTracker, count_tokens
from repro.llm.prompts import PromptBuilder, extract_code_blocks
from repro.llm.mock import SyntheticLLMClient, SyntheticLLMConfig
from repro.llm.cache import CachingClient, PromptCache, prompt_key

__all__ = [
    "ChatMessage",
    "CompletionResponse",
    "LLMClient",
    "LLMError",
    "LLMTimeoutError",
    "ProviderConfig",
    "ResilientClient",
    "wrap_client",
    "UsageTracker",
    "count_tokens",
    "PromptBuilder",
    "extract_code_blocks",
    "SyntheticLLMClient",
    "SyntheticLLMConfig",
    "CachingClient",
    "PromptCache",
    "prompt_key",
]
