"""Token counting and usage tracking.

Without a real tokenizer available offline, tokens are estimated with the
standard rule of thumb for code-heavy English text: roughly one token per
four characters, floored by the word count (code tokenises close to one
token per symbol/word).  The estimate only needs to be stable and in the
right ballpark for the §4.2.6 cost-accounting reproduction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List

_WORD_RE = re.compile(r"\S+")


def count_tokens(text: str) -> int:
    """Deterministic token estimate for ``text``."""
    if not text:
        return 0
    words = len(_WORD_RE.findall(text))
    by_chars = len(text) // 4
    return max(words, by_chars)


@dataclass
class UsageTracker:
    """Accumulates prompt/completion token usage across calls."""

    prompt_tokens: int = 0
    completion_tokens: int = 0
    calls: int = 0
    per_call: List[tuple] = field(default_factory=list)

    def record(self, prompt_tokens: int, completion_tokens: int) -> None:
        self.prompt_tokens += prompt_tokens
        self.completion_tokens += completion_tokens
        self.calls += 1
        self.per_call.append((prompt_tokens, completion_tokens))

    def record_texts(self, prompts: Iterable[str], completions: Iterable[str]) -> None:
        self.record(
            sum(count_tokens(p) for p in prompts),
            sum(count_tokens(c) for c in completions),
        )

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens
