"""Request and trace data model for the cache simulator.

A trace is an ordered sequence of :class:`Request` objects.  Real block-I/O
traces (CloudPhysics, MSR) carry a timestamp, an object id and a size; the
synthetic corpora in :mod:`repro.traces` produce the same shape.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class Request:
    """A single cache request.

    Attributes
    ----------
    timestamp:
        Logical or wall-clock time of the request.  Only ordering and
        differences matter to policies (ages, inter-arrival gaps).
    key:
        Object identifier.
    size:
        Object size in bytes.  Policies that ignore size treat every object
        as one unit; the simulator always accounts capacity in bytes.
    """

    timestamp: int
    key: int
    size: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"request size must be positive, got {self.size}")


class Trace:
    """An in-memory request trace with a few convenience statistics.

    Traces are immutable once constructed; statistics are computed lazily
    and cached because the experiment harness asks for the footprint of every
    trace (cache size = 10 % of footprint, per §4.1.4).
    """

    def __init__(self, requests: Sequence[Request], name: str = "trace"):
        self._requests: List[Request] = list(requests)
        self.name = name
        self._footprint: Optional[int] = None
        self._unique: Optional[int] = None
        self._columns: Optional[tuple] = None
        self._columns_failed = False

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, index: int) -> Request:
        return self._requests[index]

    def prefix(self, count: int, name: Optional[str] = None) -> "Trace":
        """The first ``count`` requests as a new trace (fidelity scaling)."""
        if count < 0:
            raise ValueError(f"prefix length cannot be negative, got {count}")
        return Trace(self._requests[:count], name=name or self.name)

    # -- statistics ----------------------------------------------------------

    @property
    def requests(self) -> Sequence[Request]:
        return tuple(self._requests)

    def unique_objects(self) -> int:
        """Number of distinct keys in the trace."""
        if self._unique is None:
            self._unique = len({r.key for r in self._requests})
        return self._unique

    def footprint_bytes(self) -> int:
        """Sum of sizes over distinct keys (using the largest size seen).

        This is the "trace footprint" the paper sizes caches against
        (cache size = 10 % of footprint).
        """
        if self._footprint is None:
            sizes: Dict[int, int] = {}
            for request in self._requests:
                current = sizes.get(request.key, 0)
                if request.size > current:
                    sizes[request.key] = request.size
            self._footprint = sum(sizes.values())
        return self._footprint

    def columns(self) -> Optional[tuple]:
        """The trace as ``(timestamps, keys, sizes)`` int64 numpy arrays.

        This is the struct-of-arrays form the fused columnar simulator
        (:mod:`repro.cache.columnar`) iterates; it is built once and cached.
        Returns ``None`` when any field does not fit in int64 (the fused
        path then falls back to the per-request loop).
        """
        if self._columns is None and not self._columns_failed:
            import numpy as np

            n = len(self._requests)
            try:
                self._columns = (
                    np.fromiter((r.timestamp for r in self._requests), np.int64, n),
                    np.fromiter((r.key for r in self._requests), np.int64, n),
                    np.fromiter((r.size for r in self._requests), np.int64, n),
                )
            except OverflowError:
                self._columns_failed = True
        return self._columns

    def compulsory_miss_ratio(self) -> float:
        """Lower bound on any policy's miss ratio (first access always misses)."""
        if not self._requests:
            return 0.0
        return self.unique_objects() / len(self._requests)

    def duration(self) -> int:
        """Timestamp span of the trace."""
        if not self._requests:
            return 0
        return self._requests[-1].timestamp - self._requests[0].timestamp

    # -- serialisation -------------------------------------------------------

    CSV_HEADER = ("timestamp", "key", "size")

    def to_csv(self, path: Path | str) -> None:
        """Write the trace as a CSV file with a header row."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.CSV_HEADER)
            for request in self._requests:
                writer.writerow((request.timestamp, request.key, request.size))

    @classmethod
    def from_csv(cls, path: Path | str, name: Optional[str] = None) -> "Trace":
        """Read a trace written by :meth:`to_csv`."""
        path = Path(path)
        requests: List[Request] = []
        with path.open("r", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                raise ValueError(f"trace file {path} is empty")
            if tuple(h.strip() for h in header) != cls.CSV_HEADER:
                raise ValueError(
                    f"trace file {path} has unexpected header {header!r}"
                )
            for row in reader:
                if not row:
                    continue
                timestamp, key, size = (int(row[0]), int(row[1]), int(row[2]))
                requests.append(Request(timestamp=timestamp, key=key, size=size))
        return cls(requests, name=name or path.stem)

    def to_csv_string(self) -> str:
        """Render the trace as CSV text (useful in tests)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.CSV_HEADER)
        for request in self._requests:
            writer.writerow((request.timestamp, request.key, request.size))
        return buffer.getvalue()

    @classmethod
    def from_requests(
        cls, entries: Iterable[tuple[int, int, int]], name: str = "trace"
    ) -> "Trace":
        """Build a trace from ``(timestamp, key, size)`` tuples."""
        return cls([Request(t, k, s) for t, k, s in entries], name=name)

    def slice(self, start: int, stop: int, name: Optional[str] = None) -> "Trace":
        """Return a sub-trace of requests ``[start:stop]``."""
        return Trace(self._requests[start:stop], name=name or f"{self.name}[{start}:{stop}]")


def prefix_trace(trace, fraction: float) -> "Trace":
    """The first ``fraction`` of any sized trace as an in-memory :class:`Trace`.

    This is how the fidelity ladder (:mod:`repro.core.fidelity`) truncates a
    caching workload: the scaled trace is an exact *prefix* of the full one,
    so a rung simulation replays the first ``fraction`` of the full
    simulation verbatim -- the strongest possible rank correlation a
    truncation can offer.  Works on anything sized and iterable (an
    in-memory :class:`Trace` or a
    :class:`~repro.traces.streaming.StreamingTrace`; the prefix is
    materialised, which is bounded by ``fraction`` of the source).
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
    count = max(1, int(math.ceil(len(trace) * fraction)))
    if isinstance(trace, Trace):
        return trace.prefix(count)
    return Trace(islice(iter(trace), count), name=getattr(trace, "name", "trace"))
