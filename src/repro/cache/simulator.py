"""Event-driven cache simulation loop (the libCacheSim stand-in).

The simulator is deliberately tiny: it walks the trace, consults the policy,
and keeps counters.  All policy behaviour -- including admission control and
eviction -- lives in the policy objects so that synthesized and baseline
policies are measured by exactly the same loop.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Protocol, Union

from repro.cache.metrics import SimulationResult
from repro.cache.policies.base import EvictionPolicy
from repro.cache.request import Request

PolicyLike = Union[EvictionPolicy, Callable[[int], EvictionPolicy]]


class TraceLike(Protocol):
    """Anything the simulator can walk: an in-memory :class:`Trace` or a
    constant-memory :class:`~repro.traces.streaming.StreamingTrace` -- a
    named, re-iterable source of requests exposing ``footprint_bytes()``."""

    name: str

    def __iter__(self) -> Iterator[Request]: ...

    def footprint_bytes(self) -> int: ...

#: Default cache size as a fraction of the trace footprint (§4.1.4).
DEFAULT_CACHE_FRACTION = 0.10


def cache_size_for(trace: TraceLike, fraction: float = DEFAULT_CACHE_FRACTION) -> int:
    """Cache capacity used throughout the paper: a fraction of the footprint."""
    return max(1, int(trace.footprint_bytes() * fraction))


class CacheSimulator:
    """Runs eviction policies over request traces and collects metrics."""

    def __init__(self, check_invariants_every: int = 0):
        """``check_invariants_every`` > 0 makes the simulator assert policy
        byte-accounting consistency every N requests (used in tests; costs a
        little time so it is off by default)."""
        self.check_invariants_every = check_invariants_every

    def run(
        self,
        policy: EvictionPolicy,
        trace: TraceLike,
        warmup: int = 0,
    ) -> SimulationResult:
        """Simulate ``policy`` over ``trace``.

        ``warmup`` requests at the start of the trace are executed but not
        counted in the reported metrics (the cache still fills), matching the
        usual methodology for short traces.

        When ``policy`` is a :class:`~repro.cache.priority_cache.
        PriorityFunctionCache` running a vectorized DSL program, the
        simulation is delegated to the fused columnar loop
        (:func:`repro.cache.columnar.fused_cache_run`), which produces an
        identical result and identical final policy state, just faster; it
        declines (returns ``None``) whenever exact replication is not
        guaranteed, and this loop runs as before.
        """
        from repro.cache.columnar import fused_cache_run

        fused = fused_cache_run(self, policy, trace, warmup)
        if fused is not None:
            return fused
        result = SimulationResult(
            policy=policy.policy_name,
            trace=trace.name,
            cache_size=policy.capacity,
        )
        check_every = self.check_invariants_every
        for index, request in enumerate(trace):
            counted = index >= warmup
            if counted:
                result.requests += 1
                result.bytes_requested += request.size
            if policy.lookup(request):
                if counted:
                    result.hits += 1
            else:
                if counted:
                    result.misses += 1
                    result.bytes_missed += request.size
                if request.size > policy.capacity or not policy.should_admit(request):
                    if counted:
                        result.bypassed += 1
                else:
                    policy.admit(request)
                    if counted:
                        result.admissions += 1
            if check_every and (index + 1) % check_every == 0:
                policy.check_invariants()
        result.evictions = policy.eviction_count
        return result


def simulate(
    policy_factory: PolicyLike,
    trace: TraceLike,
    cache_size: Optional[int] = None,
    cache_fraction: float = DEFAULT_CACHE_FRACTION,
    warmup: int = 0,
) -> SimulationResult:
    """Convenience wrapper: build the policy for the trace and run it.

    ``policy_factory`` is either an already-built policy (used as-is) or a
    callable ``capacity -> policy``; in the latter case the capacity defaults
    to ``cache_fraction`` of the trace footprint as in the paper.
    """
    if isinstance(policy_factory, EvictionPolicy):
        policy = policy_factory
    else:
        size = cache_size if cache_size is not None else cache_size_for(trace, cache_fraction)
        policy = policy_factory(size)
    return CacheSimulator().run(policy, trace, warmup=warmup)


def simulate_many(
    policies: Dict[str, Callable[[int], EvictionPolicy]],
    trace: TraceLike,
    cache_size: Optional[int] = None,
    cache_fraction: float = DEFAULT_CACHE_FRACTION,
) -> Dict[str, SimulationResult]:
    """Run every policy in ``policies`` over ``trace`` with the same capacity.

    The batched path: the trace's struct-of-arrays columns are decoded once
    up front and shared by every candidate, so one pass of column extraction
    amortises over the whole candidate set (each candidate still owns its
    simulation loop -- cache states diverge from the first eviction, so the
    per-candidate loops cannot be fused further without changing results).
    """
    size = cache_size if cache_size is not None else cache_size_for(trace, cache_fraction)
    columns_of = getattr(trace, "columns", None)
    if callable(columns_of):
        columns_of()  # warm the cached columnar form once for all candidates
    results: Dict[str, SimulationResult] = {}
    for name, factory in policies.items():
        policy = factory(size)
        policy.policy_name = name
        results[name] = CacheSimulator().run(policy, trace)
    return results
