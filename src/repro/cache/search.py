"""PolicySmith instantiation for web caching (§4 of the paper).

This module wires the framework to the cache substrate:

* :func:`caching_feature_spec` / :func:`caching_template` -- the Table-1
  priority() Template, including the natural-language description,
  constraints and the LRU/LFU seed programs of §4.2.1;
* :class:`CachingEvaluator` -- scores a candidate by simulating it on one
  context trace at 10 % of the trace footprint and returning the negated
  object miss ratio (higher is better);
* :func:`caching_archetypes` -- the background knowledge the synthetic LLM
  remixes (frequency/size value density, recency, history revival, ...);
* :class:`CachingDomain` -- the :class:`~repro.core.domain.SearchDomain`
  registration that plugs all of the above into the shared engine; assemble
  a search with ``build_search("caching", trace=...)`` (or the thin
  :func:`build_caching_search` / :func:`run_caching_search` wrappers).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.cache.metrics import SimulationResult
from repro.cache.priority_cache import PriorityFunctionCache, TEMPLATE_PARAMS
from repro.cache.request import Trace, prefix_trace
from repro.cache.simulator import CacheSimulator, cache_size_for
from repro.core.checker import StructuralChecker
from repro.core.context import Context
from repro.core.domain import SearchDomain, SearchSetup, build_search, register_domain
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.search import SearchConfig
from repro.core.template import Template
from repro.dsl.ast import Program
from repro.dsl.grammar import FeatureSpec
from repro.dsl.parser import parse
from repro.llm.mock import SyntheticLLMConfig

_SIGNATURE = "def priority(now, obj_id, obj_info, counts, ages, sizes, history)"


def caching_feature_spec() -> FeatureSpec:
    """The Table-1 environment as a machine-readable feature spec."""
    return FeatureSpec(
        function_name="priority",
        params=list(TEMPLATE_PARAMS),
        scalar_params=["now"],
        object_attrs={
            "obj_info": ["count", "last_accessed", "inserted_at", "size"],
        },
        object_methods={
            "counts": [("percentile", "fraction"), ("mean", "none")],
            "ages": [("percentile", "fraction"), ("mean", "none")],
            "sizes": [("percentile", "fraction"), ("mean", "none")],
            "history": [
                ("contains", "key"),
                ("count_of", "key"),
                ("age_at_eviction", "key"),
                ("size_of", "key"),
                ("time_since_eviction", "key"),
            ],
        },
        key_params=["obj_id"],
        integer_only=False,
        result_var="score",
    )


def caching_input_intervals():
    """Value ranges of the Table-1 features, for static screening.

    Everything the cache substrate feeds the priority function is a
    non-negative count, time, or size; ``history.contains`` is the one
    boolean.  The priority score itself is used unclamped (the queue orders
    raw scores), so no ``output_clamp`` is declared.
    """
    from repro.dsl.abstract import InputIntervals, Interval

    non_negative = Interval(0, float("inf"))
    aggregate = {
        method: non_negative
        for method in ("percentile", "mean", "minimum", "maximum", "count")
    }
    return InputIntervals(
        scalars={"now": non_negative, "obj_id": non_negative},
        attrs={
            "obj_info": {
                attr: non_negative
                for attr in ("count", "last_accessed", "inserted_at", "size")
            }
        },
        methods={
            "counts": dict(aggregate),
            "ages": dict(aggregate),
            "sizes": dict(aggregate),
            "history": {
                "contains": Interval(0, 1),
                "count_of": non_negative,
                "age_at_eviction": non_negative,
                "size_of": non_negative,
                "time_since_eviction": non_negative,
                "length": non_negative,
            },
        },
        bool_methods=frozenset({("history", "contains")}),
    )


TEMPLATE_DESCRIPTION = """\
Write a priority function for a web cache.  Object metadata is stored in a
priority queue; this function is invoked whenever an object is accessed or
inserted and returns the object's priority score.  When the cache is full,
the object with the LOWEST score is evicted, so higher scores mean "keep".

Available features:
- now: the current (logical) time of the request.
- obj_id: the identifier of the object being scored.
- obj_info: per-object metadata with attributes
    .count          number of accesses since insertion
    .last_accessed  time of the most recent access
    .inserted_at    time the object was added to the cache
    .size           object size in bytes
- counts, ages, sizes: aggregates over all cached objects, each supporting
    .percentile(f)  the f-th percentile (f in [0, 1]) of the attribute
    .mean()         the mean of the attribute
- history: recently evicted objects, supporting
    .contains(obj_id), .count_of(obj_id), .age_at_eviction(obj_id),
    .size_of(obj_id), .time_since_eviction(obj_id)
- builtins: min(a, b), max(a, b), abs(x), clamp(x, lo, hi).
"""

TEMPLATE_CONSTRAINTS = [
    "The function must return a numeric score on every path.",
    "Only the features listed in the description may be used.",
    "Keep the heuristic O(log N): no loops over the cache contents "
    "(the aggregates already summarise them).",
    "Avoid division by values that can be zero; guard with max(1, x) if needed.",
    "Keep the function short (a few dozen statements at most).",
]


def caching_seed_programs() -> List[Program]:
    """The LRU and LFU seed heuristics of §4.2.1."""
    lru = parse(f"{_SIGNATURE} {{\n    return obj_info.last_accessed\n}}\n")
    lfu = parse(f"{_SIGNATURE} {{\n    return obj_info.count\n}}\n")
    return [lru, lfu]


def caching_template() -> Template:
    """The full caching Template (spec + prose + constraints + seeds)."""
    return Template(
        name="cache-priority",
        spec=caching_feature_spec(),
        description=TEMPLATE_DESCRIPTION,
        constraints=list(TEMPLATE_CONSTRAINTS),
        seed_programs=caching_seed_programs(),
    )


def caching_archetypes() -> List[str]:
    """Heuristic archetypes the synthetic LLM may remix.

    These encode the same "recurring structures" a pretrained LLM knows from
    the caching literature: value density (GDSF), recency, frequency with a
    recency correction, size penalties and history-based revival.
    """
    return [
        # Value density (GDSF-like).  The large constant keeps the
        # frequency/size term on the same scale as time-based corrections.
        f"""{_SIGNATURE} {{
    score = (obj_info.count * 100000) / obj_info.size
    return score
}}""",
        # Value density with a recency correction and history revival.
        f"""{_SIGNATURE} {{
    score = (obj_info.count * 100000) / obj_info.size
    score -= (now - obj_info.last_accessed) / 20
    if (history.contains(obj_id)) {{
        score += 100000 / obj_info.size
    }}
    return score
}}""",
        # Recency with a frequency bonus.
        f"""{_SIGNATURE} {{
    age = now - obj_info.last_accessed
    score = 0 - age
    score += obj_info.count * 50
    return score
}}""",
        # Frequency with size and age penalties.
        f"""{_SIGNATURE} {{
    score = obj_info.count * 100
    score -= (now - obj_info.last_accessed) / 100
    score -= obj_info.size / 1000
    return score
}}""",
        # History-aware revival.
        f"""{_SIGNATURE} {{
    score = obj_info.count * 30
    if (history.contains(obj_id)) {{
        score += history.count_of(obj_id) * 20
    }}
    score -= (now - obj_info.last_accessed) / 200
    return score
}}""",
        # Percentile-thresholded hybrid.
        f"""{_SIGNATURE} {{
    score = obj_info.count * 10
    if (obj_info.size > sizes.percentile(0.75)) {{
        score -= 100
    }}
    if (obj_info.count > counts.percentile(0.7)) {{
        score += 100
    }}
    score -= (now - obj_info.last_accessed) / 50
    return score
}}""",
    ]


class CachingEvaluator(Evaluator):
    """Scores candidates by their object miss ratio on one context trace.

    The score is ``-miss_ratio`` so that higher is better, as the framework
    expects.  The cache size defaults to 10 % of the trace footprint
    (§4.1.4); ``warmup`` requests are excluded from the measured window.
    """

    failure_score = -1.0  # a 100 % miss ratio: worse than any real policy

    def __init__(
        self,
        trace: Trace,
        cache_size: Optional[int] = None,
        cache_fraction: float = 0.10,
        warmup: int = 0,
        refresh_interval: int = 64,
        backend: str = "compiled",
    ):
        self.trace = trace
        self.cache_size = cache_size or cache_size_for(trace, cache_fraction)
        self.warmup = warmup
        self.refresh_interval = refresh_interval
        self.backend = backend
        self._simulator = CacheSimulator()
        self.evaluations = 0
        #: Evaluations by *resolved* backend (``make_runner`` falls back down
        #: the chain for unvectorizable/uncompilable programs, so the
        #: resolved backend can differ from the requested one).  Shared with
        #: ``at_fidelity`` copies; with a process-pool executor the counters
        #: only reflect in-process evaluations.
        self.backend_stats: Dict[str, Any] = {"requested": backend, "resolved": {}}

    def evaluate_program(self, program: Program) -> EvaluationResult:
        cache = PriorityFunctionCache(
            self.cache_size,
            program,
            refresh_interval=self.refresh_interval,
            name="candidate",
            backend=self.backend,
        )
        resolved = self.backend_stats["resolved"]
        resolved[cache._priority.backend] = resolved.get(cache._priority.backend, 0) + 1
        result: SimulationResult = self._simulator.run(cache, self.trace, warmup=self.warmup)
        self.evaluations += 1
        return EvaluationResult(
            score=-result.miss_ratio,
            valid=True,
            details={
                "miss_ratio": result.miss_ratio,
                "byte_miss_ratio": result.byte_miss_ratio,
                "evictions": float(result.evictions),
            },
        )

    def input_intervals(self):
        return caching_input_intervals()

    def at_fidelity(self, fraction: float) -> "CachingEvaluator":
        """A reduced-budget copy: the first ``fraction`` of the trace.

        The cache size stays the *full-trace* size -- the cache is the
        deployment under test, the trace merely samples its workload -- so a
        rung simulation is an exact prefix of the full simulation.  The
        warmup window scales with the trace: keeping it absolute could
        swallow a cheap rung's entire prefix and leave every candidate tied
        at zero measured requests.
        """
        if fraction == 1.0:
            return self
        scaled = CachingEvaluator(
            prefix_trace(self.trace, fraction),
            cache_size=self.cache_size,
            warmup=int(self.warmup * fraction),
            refresh_interval=self.refresh_interval,
            backend=self.backend,
        )
        scaled.backend_stats = self.backend_stats  # rung evaluations count too
        return scaled


class CachingDomain(SearchDomain):
    """The web-caching instantiation as a pluggable search domain.

    Domain keyword arguments accepted by :func:`~repro.core.domain.build_search`:
    ``trace`` (required), ``cache_fraction`` (default 0.10) and ``backend``
    (DSL execution backend for candidate evaluation, default ``"compiled"``).
    """

    name = "caching"
    accepted_kwargs = frozenset({"trace", "cache_fraction", "backend"})
    #: ``trace`` / ``cache_fraction`` are per-scenario in matrix mode: they
    #: live on the workload references, not the build_search call.
    matrix_kwargs = frozenset({"backend"})

    def build_template(self) -> Template:
        return caching_template()

    def build_context(
        self,
        trace: Optional[Trace] = None,
        cache_fraction: float = 0.10,
        **_ignored: Any,
    ) -> Context:
        if trace is None:
            raise ValueError("the caching domain requires a trace= argument")
        return Context.create(
            name=f"caching/{trace.name}",
            workload=f"block I/O trace {trace.name}",
            objective="minimize object miss ratio",
            cache_fraction=cache_fraction,
        )

    def build_checker(self, template: Template) -> StructuralChecker:
        return StructuralChecker(template)

    def build_evaluator(
        self,
        trace: Optional[Trace] = None,
        cache_fraction: float = 0.10,
        backend: str = "compiled",
        **_ignored: Any,
    ) -> CachingEvaluator:
        if trace is None:
            raise ValueError("the caching domain requires a trace= argument")
        return CachingEvaluator(trace, cache_fraction=cache_fraction, backend=backend)

    def build_scenario_evaluator(
        self,
        workload: Any,
        backend: str = "compiled",
        **_ignored: Any,
    ) -> CachingEvaluator:
        """One scenario of a workload matrix: the workload's trace at its
        ``cache_fraction`` grid point."""
        from repro.cache.simulator import DEFAULT_CACHE_FRACTION
        from repro.workloads import build_workload

        return CachingEvaluator(
            build_workload(workload),
            cache_fraction=workload.param("cache_fraction", DEFAULT_CACHE_FRACTION),
            backend=backend,
        )

    def input_intervals(self):
        return caching_input_intervals()

    def default_llm_config(self) -> SyntheticLLMConfig:
        return SyntheticLLMConfig(archetypes=caching_archetypes())

    def prepare_llm_config(self, config: SyntheticLLMConfig) -> SyntheticLLMConfig:
        if not config.archetypes:
            config.archetypes = caching_archetypes()
        return config

    def default_search_config(self) -> SearchConfig:
        # §4.2.1: 20 rounds x 25 candidates, top-2 parent feedback.
        return SearchConfig(rounds=20, candidates_per_round=25)


register_domain(CachingDomain())

#: Backwards-compatible alias: the generic setup has the same field names.
CachingSearchSetup = SearchSetup


def build_caching_search(
    trace: Trace,
    rounds: int = 20,
    candidates_per_round: int = 25,
    seed: int = 0,
    cache_fraction: float = 0.10,
    llm_config: Optional[SyntheticLLMConfig] = None,
    **kwargs: Any,
) -> SearchSetup:
    """Assemble the full caching search for ``trace`` (paper defaults).

    Thin wrapper over ``build_search("caching", ...)``; extra keyword
    arguments (``engine_config=``, ``checkpoint_path=``, ``backend=``, ...)
    are forwarded.
    """
    return build_search(
        "caching",
        rounds=rounds,
        candidates_per_round=candidates_per_round,
        seed=seed,
        llm_config=llm_config,
        trace=trace,
        cache_fraction=cache_fraction,
        **kwargs,
    )


def run_caching_search(
    trace: Trace,
    rounds: int = 20,
    candidates_per_round: int = 25,
    seed: int = 0,
    cache_fraction: float = 0.10,
    **kwargs: Any,
):
    """Run the §4.2.1 search for ``trace`` and return its :class:`SearchResult`."""
    setup = build_caching_search(
        trace,
        rounds=rounds,
        candidates_per_round=candidates_per_round,
        seed=seed,
        cache_fraction=cache_fraction,
        **kwargs,
    )
    return setup.search.run()
