"""The PolicySmith caching Template: a priority-queue cache.

Object metadata lives in a priority queue; the position of each object is
determined by a customisable ``priority()`` function which is re-evaluated on
every access or insertion of that object (and only then).  When space is
needed, the object with the lowest score is evicted (§4.1.2 of the paper).

The priority function may be

* a :class:`~repro.dsl.ast.Program` in the heuristic DSL (the normal case:
  this is what the Generator produces), or
* any Python callable with the Template signature, which is how the seed
  heuristics (LRU, LFU) and unit tests plug in.

The function receives exactly the environment of Table 1: ``now``,
``obj_id``, ``obj_info``, ``counts``, ``ages``, ``sizes``, ``history``.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Protocol, Tuple, Union

from repro.cache.features import EvictionHistory, FeatureAggregates, ObjectInfoView
from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request
from repro.dsl.ast import Program
from repro.dsl.compile import make_runner

#: Signature of a priority function supplied as a plain Python callable.
PriorityCallable = Callable[
    [int, int, ObjectInfoView, FeatureAggregates, FeatureAggregates, FeatureAggregates, EvictionHistory],
    float,
]

#: The Template's formal parameter list, in order.
TEMPLATE_PARAMS = ("now", "obj_id", "obj_info", "counts", "ages", "sizes", "history")


class PriorityFunction(Protocol):
    """Anything that can score an object given the Table-1 environment."""

    def evaluate(self, env: dict) -> float:  # pragma: no cover - protocol
        ...


class DslPriorityFunction:
    """Adapts a DSL :class:`Program` to the priority-function interface.

    ``backend`` selects the execution strategy: ``"compiled"`` (the default)
    turns the program into a native Python callable via
    :func:`~repro.dsl.compile.compile_program` -- roughly an order of
    magnitude faster per invocation -- while ``"interpreter"`` keeps the
    tree-walking interpreter (the differential-testing oracle).  If
    compilation fails for any reason the interpreter is used as a fallback.
    """

    def __init__(
        self,
        program: Program,
        max_steps: int = 20_000,
        backend: str = "compiled",
    ):
        expected = list(TEMPLATE_PARAMS)
        if list(program.params) != expected:
            raise ValueError(
                f"priority program must have parameters {expected}, "
                f"got {list(program.params)}"
            )
        self.program = program
        self._runner, self.backend = make_runner(program, backend, max_steps)

    def evaluate(self, env: dict) -> float:
        value = self._runner.run(env)
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeError(f"priority function returned a non-numeric value: {value!r}")


class CallablePriorityFunction:
    """Adapts a plain Python callable to the priority-function interface."""

    def __init__(self, fn: PriorityCallable):
        self._fn = fn

    def evaluate(self, env: dict) -> float:
        return float(
            self._fn(
                env["now"],
                env["obj_id"],
                env["obj_info"],
                env["counts"],
                env["ages"],
                env["sizes"],
                env["history"],
            )
        )


def as_priority_function(
    priority: Union[Program, PriorityCallable, PriorityFunction],
    backend: str = "compiled",
) -> PriorityFunction:
    """Coerce any supported priority representation to the common interface."""
    if isinstance(priority, Program):
        return DslPriorityFunction(priority, backend=backend)
    if hasattr(priority, "evaluate"):
        return priority  # type: ignore[return-value]
    if callable(priority):
        return CallablePriorityFunction(priority)
    raise TypeError(f"unsupported priority function: {priority!r}")


class PriorityFunctionCache(EvictionPolicy):
    """Priority-queue cache parameterised by a synthesized priority function.

    Parameters
    ----------
    capacity:
        Cache capacity in bytes.
    priority:
        DSL program, Python callable, or priority-function object.
    refresh_interval:
        How many requests may elapse between refreshes of the aggregate
        feature snapshots (Table 1's percentile features).  Refreshing on
        every request would be O(N log N) per access and is exactly the kind
        of full-cache scan the Template constraints forbid.
    history_size:
        Number of evicted objects remembered in the history feature.
    backend:
        DSL execution backend for ``priority`` when it is a
        :class:`~repro.dsl.ast.Program`: ``"compiled"`` (default, the fast
        path) or ``"interpreter"`` (the oracle / fallback).
    """

    policy_name = "PolicySmith"

    def __init__(
        self,
        capacity: int,
        priority: Union[Program, PriorityCallable, PriorityFunction],
        refresh_interval: int = 64,
        history_size: int = 1024,
        name: Optional[str] = None,
        backend: str = "compiled",
    ):
        super().__init__(capacity)
        if refresh_interval <= 0:
            raise ValueError("refresh_interval must be positive")
        self._priority = as_priority_function(priority, backend=backend)
        if name:
            self.policy_name = name
        self.refresh_interval = refresh_interval
        self._requests_since_refresh = refresh_interval  # force refresh on first use
        self._counts = FeatureAggregates()
        self._ages = FeatureAggregates()
        self._sizes = FeatureAggregates()
        self._history = EvictionHistory(max_entries=history_size)
        # Min-heap of (score, generation, key) with lazy invalidation.
        self._heap: List[Tuple[float, int, int]] = []
        self._generation = 0
        self.priority_evaluations = 0

    # -- feature maintenance -----------------------------------------------------

    def _maybe_refresh_aggregates(self, now: int) -> None:
        self._requests_since_refresh += 1
        if self._requests_since_refresh < self.refresh_interval:
            return
        self._requests_since_refresh = 0
        counts: List[float] = []
        ages: List[float] = []
        sizes: List[float] = []
        for obj in self._objects.values():
            counts.append(obj.access_count)
            ages.append(max(0, now - obj.last_access_time))
            sizes.append(obj.size)
        self._counts.update(counts)
        self._ages.update(ages)
        self._sizes.update(sizes)

    def _environment(self, now: int, obj: CachedObject) -> dict:
        self._history.set_now(now)
        return {
            "now": now,
            "obj_id": obj.key,
            "obj_info": ObjectInfoView(obj),
            "counts": self._counts,
            "ages": self._ages,
            "sizes": self._sizes,
            "history": self._history,
        }

    def _score(self, now: int, obj: CachedObject) -> float:
        self.priority_evaluations += 1
        return self._priority.evaluate(self._environment(now, obj))

    def _push(self, now: int, obj: CachedObject) -> None:
        score = self._score(now, obj)
        self._generation += 1
        obj.extra["ps_gen"] = self._generation
        obj.extra["ps_score"] = score
        heapq.heappush(self._heap, (score, self._generation, obj.key))

    # -- policy hooks ---------------------------------------------------------------

    def lookup(self, request: Request) -> bool:
        self._maybe_refresh_aggregates(request.timestamp)
        return super().lookup(request)

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        self._push(request.timestamp, obj)

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        self._push(request.timestamp, obj)

    def on_evict(self, obj: CachedObject, now: int) -> None:
        self._history.record(obj, now)

    def choose_victim(self, incoming: Request) -> Optional[int]:
        while self._heap:
            _score, generation, key = self._heap[0]
            obj = self.get(key)
            if obj is None or obj.extra.get("ps_gen") != generation:
                heapq.heappop(self._heap)
                continue
            return key
        return None

    # -- introspection -----------------------------------------------------------------

    def current_score(self, key: int) -> Optional[float]:
        """Last computed priority score of ``key`` (None if not resident)."""
        obj = self.get(key)
        if obj is None:
            return None
        return float(obj.extra.get("ps_score", 0.0))

    @property
    def history(self) -> EvictionHistory:
        return self._history
