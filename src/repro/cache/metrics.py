"""Result records produced by the cache simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class SimulationResult:
    """Counters collected over one (policy, trace, cache size) run.

    The paper's headline metric is the *object miss ratio* and, for Figure 2,
    the *improvement in miss ratio over FIFO*:
    ``(miss_ratio(FIFO) - miss_ratio(policy)) / miss_ratio(FIFO)``.
    """

    policy: str
    trace: str
    cache_size: int
    requests: int = 0
    hits: int = 0
    misses: int = 0
    bytes_requested: int = 0
    bytes_missed: int = 0
    evictions: int = 0
    admissions: int = 0
    bypassed: int = 0

    @property
    def miss_ratio(self) -> float:
        """Fraction of requests that missed (0 when the trace is empty)."""
        if self.requests == 0:
            return 0.0
        return self.misses / self.requests

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.miss_ratio if self.requests else 0.0

    @property
    def byte_miss_ratio(self) -> float:
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_missed / self.bytes_requested

    def improvement_over(self, baseline: "SimulationResult") -> float:
        """Relative miss-ratio improvement over ``baseline`` (FIFO in Fig. 2).

        Positive values mean this policy misses less often than the baseline.
        When the baseline never misses the improvement is defined as 0.
        """
        if baseline.miss_ratio == 0:
            return 0.0
        return (baseline.miss_ratio - self.miss_ratio) / baseline.miss_ratio

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary used by the experiment report writers."""
        return {
            "policy": self.policy,
            "trace": self.trace,
            "cache_size": self.cache_size,
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "miss_ratio": self.miss_ratio,
            "byte_miss_ratio": self.byte_miss_ratio,
            "evictions": self.evictions,
            "admissions": self.admissions,
        }
