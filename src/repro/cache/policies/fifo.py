"""FIFO eviction: evict the object that entered the cache first.

FIFO is the fixed baseline every policy in Figure 2 is normalised against
("improvement in miss ratio over FIFO", §4.2.2).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class FIFOCache(EvictionPolicy):
    """First-in first-out eviction."""

    policy_name = "FIFO"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._queue: "OrderedDict[int, None]" = OrderedDict()

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        self._queue[obj.key] = None

    def on_evict(self, obj: CachedObject, now: int) -> None:
        self._queue.pop(obj.key, None)

    def choose_victim(self, incoming: Request) -> Optional[int]:
        if not self._queue:
            return None
        return next(iter(self._queue))
