"""Cacheus (Rodriguez et al., FAST '21), in simplified form.

Cacheus is the successor of LeCaR: a regret-minimising mixture of two
experts, where the experts themselves are scan-resistant (SR-LRU) and
churn-resistant (CR-LFU) variants, and the learning rate adapts online
instead of being fixed.

This implementation keeps the structure of the original:

* shared cache contents, two expert victim-selection rules
  (scan-resistant recency and churn-resistant frequency),
* per-expert ghost histories that trigger multiplicative weight updates,
* an adaptive learning rate: the hit rate is monitored over fixed windows
  and the learning rate is increased/decreased following the sign of the
  performance gradient (if the last change helped, keep going; if it hurt,
  reverse direction), as in the Cacheus paper.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class CacheusCache(EvictionPolicy):
    """Adaptive mixture of scan-resistant and churn-resistant experts."""

    policy_name = "Cacheus"

    WINDOW = 512
    MIN_LEARNING_RATE = 0.01
    MAX_LEARNING_RATE = 1.0

    def __init__(self, capacity: int, seed: int = 1):
        super().__init__(capacity)
        self._rng = random.Random(seed)
        self._w_rec = 0.5
        self._w_freq = 0.5
        self._learning_rate = 0.45
        self._lr_direction = 1.0

        # Recency expert: SR partition (seen once) and R partition (reused).
        self._sr: "OrderedDict[int, None]" = OrderedDict()
        self._r: "OrderedDict[int, None]" = OrderedDict()

        # Frequency expert: CR-LFU lazy heap (ties evict the MRU object).
        self._freq_heap: List[Tuple[int, int, int, int]] = []
        self._generation = 0

        # Ghost histories per expert.
        self._hist_rec: "OrderedDict[int, int]" = OrderedDict()
        self._hist_freq: "OrderedDict[int, int]" = OrderedDict()
        self._vtime = 0

        # Adaptive-learning-rate bookkeeping.
        self._window_requests = 0
        self._window_hits = 0
        self._previous_hit_rate: Optional[float] = None

    # -- expert machinery ----------------------------------------------------------

    def _push_freq(self, obj: CachedObject) -> None:
        self._generation += 1
        obj.extra["cacheus_gen"] = self._generation
        heapq.heappush(
            self._freq_heap,
            (obj.access_count, -obj.last_access_time, self._generation, obj.key),
        )

    def _recency_victim(self) -> Optional[int]:
        if self._sr:
            return next(iter(self._sr))
        if self._r:
            return next(iter(self._r))
        return None

    def _frequency_victim(self) -> Optional[int]:
        while self._freq_heap:
            _freq, _neg_last, generation, key = self._freq_heap[0]
            obj = self.get(key)
            if obj is None or obj.extra.get("cacheus_gen") != generation:
                heapq.heappop(self._freq_heap)
                continue
            return key
        return None

    # -- weights and learning rate ----------------------------------------------------

    def _trim_history(self, history: "OrderedDict[int, int]") -> None:
        limit = max(16, len(self._objects))
        while len(history) > limit:
            history.popitem(last=False)

    def _update_weight(self, expert: str) -> None:
        """Penalise ``expert`` for a ghost hit attributable to it."""
        penalty = math.exp(-self._learning_rate)
        if expert == "rec":
            self._w_rec *= penalty
        else:
            self._w_freq *= penalty
        total = self._w_rec + self._w_freq
        if total <= 0:  # pragma: no cover - defensive
            self._w_rec = self._w_freq = 0.5
            return
        self._w_rec /= total
        self._w_freq /= total

    def _adapt_learning_rate(self) -> None:
        hit_rate = self._window_hits / max(1, self._window_requests)
        if self._previous_hit_rate is not None:
            if hit_rate < self._previous_hit_rate:
                # The last adjustment (or the status quo) hurt: reverse course
                # and explore the other direction.
                self._lr_direction *= -1.0
            step = 1.0 + 0.25 * self._lr_direction
            self._learning_rate = min(
                self.MAX_LEARNING_RATE,
                max(self.MIN_LEARNING_RATE, self._learning_rate * step),
            )
        self._previous_hit_rate = hit_rate
        self._window_requests = 0
        self._window_hits = 0

    def _account(self, hit: bool) -> None:
        self._window_requests += 1
        if hit:
            self._window_hits += 1
        if self._window_requests >= self.WINDOW:
            self._adapt_learning_rate()

    @property
    def recency_weight(self) -> float:
        return self._w_rec

    @property
    def frequency_weight(self) -> float:
        return self._w_freq

    @property
    def learning_rate(self) -> float:
        return self._learning_rate

    # -- hooks ----------------------------------------------------------------------------

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        self._vtime += 1
        self._account(hit=True)
        key = obj.key
        if key in self._sr:
            self._sr.pop(key)
            self._r[key] = None
        elif key in self._r:
            self._r.move_to_end(key)
        self._push_freq(obj)

    def on_miss(self, request: Request) -> None:
        self._vtime += 1
        self._account(hit=False)
        key = request.key
        if key in self._hist_rec:
            self._hist_rec.pop(key)
            self._update_weight("rec")
        elif key in self._hist_freq:
            self._hist_freq.pop(key)
            self._update_weight("freq")

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        self._sr[obj.key] = None
        self._push_freq(obj)

    def on_evict(self, obj: CachedObject, now: int) -> None:
        self._sr.pop(obj.key, None)
        self._r.pop(obj.key, None)
        expert = obj.extra.get("cacheus_expert", "rec")
        if expert == "freq":
            self._hist_freq[obj.key] = obj.size
            self._trim_history(self._hist_freq)
        else:
            self._hist_rec[obj.key] = obj.size
            self._trim_history(self._hist_rec)

    def choose_victim(self, incoming: Request) -> Optional[int]:
        rec_choice = self._recency_victim()
        freq_choice = self._frequency_victim()
        if rec_choice is None:
            chosen, expert = freq_choice, "freq"
        elif freq_choice is None:
            chosen, expert = rec_choice, "rec"
        elif self._rng.random() < self._w_rec:
            chosen, expert = rec_choice, "rec"
        else:
            chosen, expert = freq_choice, "freq"
        if chosen is None:
            return None
        obj = self.get(chosen)
        if obj is not None:
            obj.extra["cacheus_expert"] = expert
        return chosen
