"""LFU eviction: evict the least frequently used object.

Implemented with frequency buckets so both hits and evictions are O(1).
Ties within the lowest-frequency bucket are broken LRU-style (the least
recently used of the least frequently used objects goes first), which is the
common in-memory LFU formulation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class LFUCache(EvictionPolicy):
    """Least-frequently-used eviction with O(1) bucket bookkeeping."""

    policy_name = "LFU"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._freq_of: Dict[int, int] = {}
        self._buckets: Dict[int, "OrderedDict[int, None]"] = {}
        self._min_freq = 0

    # -- bucket helpers ------------------------------------------------------

    def _bucket(self, freq: int) -> "OrderedDict[int, None]":
        bucket = self._buckets.get(freq)
        if bucket is None:
            bucket = OrderedDict()
            self._buckets[freq] = bucket
        return bucket

    def _remove_from_bucket(self, key: int, freq: int) -> None:
        bucket = self._buckets.get(freq)
        if bucket is None:
            return
        bucket.pop(key, None)
        if not bucket:
            del self._buckets[freq]
            if freq == self._min_freq:
                self._min_freq = min(self._buckets) if self._buckets else 0

    # -- hooks ----------------------------------------------------------------

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        freq = self._freq_of[obj.key]
        self._remove_from_bucket(obj.key, freq)
        self._freq_of[obj.key] = freq + 1
        self._bucket(freq + 1)[obj.key] = None
        if freq == self._min_freq and freq not in self._buckets:
            self._min_freq = freq + 1

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        self._freq_of[obj.key] = 1
        self._bucket(1)[obj.key] = None
        self._min_freq = 1

    def on_evict(self, obj: CachedObject, now: int) -> None:
        freq = self._freq_of.pop(obj.key, None)
        if freq is not None:
            self._remove_from_bucket(obj.key, freq)

    def choose_victim(self, incoming: Request) -> Optional[int]:
        if not self._buckets:
            return None
        if self._min_freq not in self._buckets:
            self._min_freq = min(self._buckets)
        bucket = self._buckets[self._min_freq]
        return next(iter(bucket))
