"""ARC: Adaptive Replacement Cache (Megiddo & Modha, FAST '03).

ARC balances recency and frequency by keeping two resident LRU lists --
T1 (objects seen once recently) and T2 (objects seen at least twice) -- and
two ghost lists, B1 and B2, remembering keys recently evicted from each.
A ghost hit in B1 grows the recency target ``p``; a ghost hit in B2 shrinks
it.  The byte-based adaptation below generalises the original unit-size
formulation to variable object sizes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class ARCCache(EvictionPolicy):
    """Adaptive Replacement Cache generalised to byte-sized objects."""

    policy_name = "ARC"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._t1: "OrderedDict[int, None]" = OrderedDict()
        self._t2: "OrderedDict[int, None]" = OrderedDict()
        self._b1: "OrderedDict[int, int]" = OrderedDict()  # key -> size
        self._b2: "OrderedDict[int, int]" = OrderedDict()
        self._t1_bytes = 0
        self._t2_bytes = 0
        self._b1_bytes = 0
        self._b2_bytes = 0
        self._p = 0.0  # target size (bytes) of T1
        self._pending_list = "t1"

    # -- ghost-list helpers ---------------------------------------------------

    def _trim_ghosts(self) -> None:
        """Keep each ghost list at roughly one cache's worth of bytes."""
        while self._b1 and self._b1_bytes > self.capacity:
            _key, size = self._b1.popitem(last=False)
            self._b1_bytes -= size
        while self._b2 and self._b2_bytes > self.capacity:
            _key, size = self._b2.popitem(last=False)
            self._b2_bytes -= size

    # -- hooks ------------------------------------------------------------------

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        key = obj.key
        if key in self._t1:
            self._t1.pop(key)
            self._t1_bytes -= obj.size
            self._t2[key] = None
            self._t2_bytes += obj.size
            obj.extra["arc_list"] = "t2"
        elif key in self._t2:
            self._t2.move_to_end(key)

    def on_miss(self, request: Request) -> None:
        key = request.key
        if key in self._b1:
            # Recency ghost hit: grow the T1 target.
            delta = max(1.0, self._b2_bytes / max(1, self._b1_bytes)) * request.size
            self._p = min(float(self.capacity), self._p + delta)
            size = self._b1.pop(key)
            self._b1_bytes -= size
            self._pending_list = "t2"
        elif key in self._b2:
            # Frequency ghost hit: shrink the T1 target.
            delta = max(1.0, self._b1_bytes / max(1, self._b2_bytes)) * request.size
            self._p = max(0.0, self._p - delta)
            size = self._b2.pop(key)
            self._b2_bytes -= size
            self._pending_list = "t2"
        else:
            self._pending_list = "t1"

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        if self._pending_list == "t2":
            self._t2[obj.key] = None
            self._t2_bytes += obj.size
            obj.extra["arc_list"] = "t2"
        else:
            self._t1[obj.key] = None
            self._t1_bytes += obj.size
            obj.extra["arc_list"] = "t1"
        self._pending_list = "t1"

    def on_evict(self, obj: CachedObject, now: int) -> None:
        key = obj.key
        if key in self._t1:
            self._t1.pop(key)
            self._t1_bytes -= obj.size
            self._b1[key] = obj.size
            self._b1_bytes += obj.size
        elif key in self._t2:
            self._t2.pop(key)
            self._t2_bytes -= obj.size
            self._b2[key] = obj.size
            self._b2_bytes += obj.size
        self._trim_ghosts()

    # -- eviction (REPLACE) --------------------------------------------------------

    def choose_victim(self, incoming: Request) -> Optional[int]:
        in_b2 = incoming.key in self._b2
        prefer_t1 = self._t1 and (
            self._t1_bytes > self._p or (in_b2 and self._t1_bytes == int(self._p))
        )
        if prefer_t1:
            return next(iter(self._t1))
        if self._t2:
            return next(iter(self._t2))
        if self._t1:
            return next(iter(self._t1))
        return None
