"""LeCaR: Learning Cache Replacement (Vietri et al., HotStorage '18).

LeCaR keeps the full cache contents shared between two *experts* -- LRU and
LFU -- and learns online which expert to trust.  On every eviction it samples
an expert according to the current weights and evicts that expert's victim,
remembering the victim in the expert's ghost history.  When a later miss hits
one of the ghost histories, the policy incurs *regret* against the expert
responsible and its weight is decayed multiplicatively (with a time-discount
on the regret, so old mistakes matter less).
"""

from __future__ import annotations

import heapq
import math
import random
from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class LeCaRCache(EvictionPolicy):
    """Regret-minimising mixture of LRU and LFU experts."""

    policy_name = "LeCaR"

    LEARNING_RATE = 0.45
    DISCOUNT_RATE = 0.005

    def __init__(self, capacity: int, seed: int = 1):
        super().__init__(capacity)
        self._w_lru = 0.5
        self._w_lfu = 0.5
        self._rng = random.Random(seed)
        # Recency order (LRU expert) and a lazy min-heap for the LFU expert
        # keyed by (frequency, last access, generation).
        self._recency: "OrderedDict[int, None]" = OrderedDict()
        self._freq_heap: List[Tuple[int, int, int, int]] = []
        self._generation = 0
        # Ghost histories: key -> (virtual_time_at_eviction, size)
        self._hist_lru: "OrderedDict[int, tuple[int, int]]" = OrderedDict()
        self._hist_lfu: "OrderedDict[int, tuple[int, int]]" = OrderedDict()
        self._vtime = 0

    # -- expert victim selection ---------------------------------------------------

    def _push_freq(self, obj: CachedObject) -> None:
        self._generation += 1
        obj.extra["lecar_gen"] = self._generation
        heapq.heappush(
            self._freq_heap,
            (obj.access_count, obj.last_access_time, self._generation, obj.key),
        )

    def _lru_victim(self) -> Optional[int]:
        if not self._recency:
            return None
        return next(iter(self._recency))

    def _lfu_victim(self) -> Optional[int]:
        # Least frequency, ties broken by least recent use; stale heap entries
        # (whose generation no longer matches) are discarded lazily.
        while self._freq_heap:
            _freq, _last, generation, key = self._freq_heap[0]
            obj = self.get(key)
            if obj is None or obj.extra.get("lecar_gen") != generation:
                heapq.heappop(self._freq_heap)
                continue
            return key
        return None

    # -- weight update ----------------------------------------------------------------

    def _trim_history(self, history: "OrderedDict[int, tuple[int, int]]") -> None:
        limit = max(16, len(self._objects))
        while len(history) > limit:
            history.popitem(last=False)

    def _apply_regret(self, evicted_at: int) -> float:
        elapsed = max(0, self._vtime - evicted_at)
        return self.DISCOUNT_RATE ** (elapsed / max(1, len(self._objects) or 1))

    def _normalise(self) -> None:
        total = self._w_lru + self._w_lfu
        if total <= 0:  # pragma: no cover - defensive
            self._w_lru = self._w_lfu = 0.5
            return
        self._w_lru /= total
        self._w_lfu /= total

    @property
    def lru_weight(self) -> float:
        return self._w_lru

    @property
    def lfu_weight(self) -> float:
        return self._w_lfu

    # -- hooks ----------------------------------------------------------------------------

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        self._vtime += 1
        self._recency.move_to_end(obj.key)
        self._push_freq(obj)

    def on_miss(self, request: Request) -> None:
        self._vtime += 1
        key = request.key
        if key in self._hist_lru:
            evicted_at, _size = self._hist_lru.pop(key)
            regret = self._apply_regret(evicted_at)
            self._w_lru *= math.exp(-self.LEARNING_RATE * regret)
            self._normalise()
        elif key in self._hist_lfu:
            evicted_at, _size = self._hist_lfu.pop(key)
            regret = self._apply_regret(evicted_at)
            self._w_lfu *= math.exp(-self.LEARNING_RATE * regret)
            self._normalise()

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        self._recency[obj.key] = None
        self._push_freq(obj)

    def on_evict(self, obj: CachedObject, now: int) -> None:
        self._recency.pop(obj.key, None)
        expert = obj.extra.get("lecar_expert")
        record = (self._vtime, obj.size)
        if expert == "lfu":
            self._hist_lfu[obj.key] = record
            self._trim_history(self._hist_lfu)
        else:
            self._hist_lru[obj.key] = record
            self._trim_history(self._hist_lru)

    def choose_victim(self, incoming: Request) -> Optional[int]:
        lru_choice = self._lru_victim()
        lfu_choice = self._lfu_victim()
        if lru_choice is None:
            chosen, expert = lfu_choice, "lfu"
        elif lfu_choice is None:
            chosen, expert = lru_choice, "lru"
        elif self._rng.random() < self._w_lru:
            chosen, expert = lru_choice, "lru"
        else:
            chosen, expert = lfu_choice, "lfu"
        if chosen is None:
            return None
        obj = self.get(chosen)
        if obj is not None:
            obj.extra["lecar_expert"] = expert
        return chosen
