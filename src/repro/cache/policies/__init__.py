"""Baseline eviction policies plus the shipped evolved heuristics.

``BASELINES`` maps policy names to constructors ``(capacity) -> policy`` for
the fourteen baseline algorithms used in the paper's Figure 2 (§4.2.2), and
``ALL_POLICIES`` additionally includes ARC, TwoQ and LFU (cited in the
introduction) so downstream users have the full menagerie.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.policies.fifo import FIFOCache
from repro.cache.policies.lru import LRUCache
from repro.cache.policies.mru import MRUCache
from repro.cache.policies.lfu import LFUCache
from repro.cache.policies.fifo_reinsertion import FIFOReinsertionCache
from repro.cache.policies.sieve import SieveCache
from repro.cache.policies.s3fifo import S3FIFOCache
from repro.cache.policies.gdsf import GDSFCache
from repro.cache.policies.lirs import LIRSCache
from repro.cache.policies.lhd import LHDCache
from repro.cache.policies.arc import ARCCache
from repro.cache.policies.twoq import TwoQCache
from repro.cache.policies.lecar import LeCaRCache
from repro.cache.policies.sr_lru import SRLRUCache
from repro.cache.policies.cr_lfu import CRLFUCache
from repro.cache.policies.cacheus import CacheusCache

PolicyFactory = Callable[[int], EvictionPolicy]

#: The fourteen baselines reported in §4.2.2 of the paper.
BASELINES: Dict[str, PolicyFactory] = {
    "GDSF": GDSFCache,
    "S3-FIFO": S3FIFOCache,
    "SIEVE": SieveCache,
    "LIRS": LIRSCache,
    "LHD": LHDCache,
    "Cacheus": CacheusCache,
    "FIFO-Re": FIFOReinsertionCache,
    "LeCaR": LeCaRCache,
    "SR-LRU": SRLRUCache,
    "CR-LFU": CRLFUCache,
    "LRU": LRUCache,
    "MRU": MRUCache,
    "FIFO": FIFOCache,
    "LFU": LFUCache,
}

#: Every policy shipped with the library (baselines + intro-cited extras).
ALL_POLICIES: Dict[str, PolicyFactory] = dict(BASELINES)
ALL_POLICIES.update(
    {
        "ARC": ARCCache,
        "TwoQ": TwoQCache,
    }
)

__all__ = [
    "CachedObject",
    "EvictionPolicy",
    "FIFOCache",
    "LRUCache",
    "MRUCache",
    "LFUCache",
    "FIFOReinsertionCache",
    "SieveCache",
    "S3FIFOCache",
    "GDSFCache",
    "LIRSCache",
    "LHDCache",
    "ARCCache",
    "TwoQCache",
    "LeCaRCache",
    "SRLRUCache",
    "CRLFUCache",
    "CacheusCache",
    "BASELINES",
    "ALL_POLICIES",
    "PolicyFactory",
]
