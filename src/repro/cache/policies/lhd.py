"""LHD: Least Hit Density eviction (Beckmann, Chen & Cidon, NSDI '18).

LHD estimates, for every cached object, its *hit density*: the probability
that the object will be hit again divided by the space-time it is expected to
occupy until that hit (or until eviction).  Eviction removes the object with
the lowest hit density among a small random sample, as in the original
system.

The estimator here follows the paper's structure in a simplified form:

* object age (time since last access) is quantised into logarithmic bins;
* two counters are kept per bin, ``hits[b]`` and ``evictions[b]``, decayed
  periodically so the estimate tracks the recent workload;
* the hit probability of an object currently at age ``a`` is the fraction of
  events (hits or evictions) at ages ``>= a`` that were hits, and the expected
  remaining lifetime is the mean event age beyond ``a``;
* hit density = hit probability / (expected lifetime * object size).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class LHDCache(EvictionPolicy):
    """Sampled least-hit-density eviction with coarse age binning."""

    policy_name = "LHD"

    NUM_BINS = 32
    SAMPLE_SIZE = 32
    DECAY_INTERVAL = 4096
    DECAY_FACTOR = 0.8

    def __init__(self, capacity: int, seed: int = 1):
        super().__init__(capacity)
        self._hits = [1.0] * self.NUM_BINS
        self._evictions = [1.0] * self.NUM_BINS
        self._events_since_decay = 0
        self._rng = random.Random(seed)
        # Key list with O(1) removal for uniform sampling.
        self._key_list: List[int] = []
        self._key_pos: dict[int, int] = {}

    # -- age binning ------------------------------------------------------------

    @classmethod
    def _bin_of(cls, age: int) -> int:
        if age <= 0:
            return 0
        return min(cls.NUM_BINS - 1, int(math.log2(age + 1)))

    def _record(self, counters: List[float], age: int) -> None:
        counters[self._bin_of(age)] += 1.0
        self._events_since_decay += 1
        if self._events_since_decay >= self.DECAY_INTERVAL:
            self._events_since_decay = 0
            for i in range(self.NUM_BINS):
                self._hits[i] *= self.DECAY_FACTOR
                self._evictions[i] *= self.DECAY_FACTOR

    def _hit_density(self, obj: CachedObject, now: int) -> float:
        age_bin = self._bin_of(obj.age(now))
        hits_beyond = sum(self._hits[age_bin:])
        evictions_beyond = sum(self._evictions[age_bin:])
        total = hits_beyond + evictions_beyond
        if total <= 0:
            return 0.0
        hit_probability = hits_beyond / total
        # Expected remaining lifetime: mean bin midpoint of events beyond the
        # object's current age, measured in (coarse) time units.
        weighted_age = 0.0
        for b in range(age_bin, self.NUM_BINS):
            midpoint = 2.0 ** b
            weighted_age += midpoint * (self._hits[b] + self._evictions[b])
        expected_lifetime = max(1.0, weighted_age / total)
        return hit_probability / (expected_lifetime * max(1, obj.size))

    # -- key sampling -------------------------------------------------------------

    def _track_key(self, key: int) -> None:
        self._key_pos[key] = len(self._key_list)
        self._key_list.append(key)

    def _untrack_key(self, key: int) -> None:
        pos = self._key_pos.pop(key, None)
        if pos is None:
            return
        last_key = self._key_list[-1]
        self._key_list[pos] = last_key
        self._key_pos[last_key] = pos
        self._key_list.pop()
        if last_key == key and key in self._key_pos:  # pragma: no cover
            del self._key_pos[key]

    # -- hooks ----------------------------------------------------------------------

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        # obj.last_access_time was already updated by lookup(); the age of the
        # hit is the gap between this and the previous access.
        previous = int(obj.extra.get("lhd_prev_access", obj.insert_time))
        self._record(self._hits, request.timestamp - previous)
        obj.extra["lhd_prev_access"] = request.timestamp

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        obj.extra["lhd_prev_access"] = request.timestamp
        self._track_key(obj.key)

    def on_evict(self, obj: CachedObject, now: int) -> None:
        previous = int(obj.extra.get("lhd_prev_access", obj.insert_time))
        self._record(self._evictions, now - previous)
        self._untrack_key(obj.key)

    def choose_victim(self, incoming: Request) -> Optional[int]:
        if not self._key_list:
            return None
        now = incoming.timestamp
        sample_size = min(self.SAMPLE_SIZE, len(self._key_list))
        if sample_size == len(self._key_list):
            sample = list(self._key_list)
        else:
            sample = [
                self._key_list[self._rng.randrange(len(self._key_list))]
                for _ in range(sample_size)
            ]
        best_key = sample[0]
        best_density = float("inf")
        for key in sample:
            obj = self.get(key)
            if obj is None:  # pragma: no cover - defensive
                continue
            density = self._hit_density(obj, now)
            if density < best_density:
                best_density = density
                best_key = key
        return best_key
