"""FIFO-Reinsertion (a.k.a. Clock / second chance) eviction.

Objects are kept in insertion order.  When the head of the queue has been
accessed since it was (re)inserted, it is granted a second chance: its
accessed bit is cleared and it is moved to the back of the queue instead of
being evicted.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class FIFOReinsertionCache(EvictionPolicy):
    """FIFO with reinsertion of recently accessed objects (Clock)."""

    policy_name = "FIFO-Re"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._queue: "OrderedDict[int, None]" = OrderedDict()

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        obj.extra["accessed"] = True

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        obj.extra["accessed"] = False
        self._queue[obj.key] = None

    def on_evict(self, obj: CachedObject, now: int) -> None:
        self._queue.pop(obj.key, None)

    def choose_victim(self, incoming: Request) -> Optional[int]:
        if not self._queue:
            return None
        # At most one full sweep: after clearing every accessed bit the
        # oldest object is returned unconditionally.
        for _ in range(len(self._queue)):
            key = next(iter(self._queue))
            obj = self.get(key)
            if obj is None:  # pragma: no cover - defensive
                self._queue.pop(key, None)
                continue
            if obj.extra.get("accessed"):
                obj.extra["accessed"] = False
                self._queue.move_to_end(key)
            else:
                return key
        return next(iter(self._queue))
