"""SIEVE eviction (Zhang et al., NSDI '24).

SIEVE keeps objects in a single queue ordered from newest (head) to oldest
(tail) and sweeps a *hand* from the tail towards the head.  A hit only sets
the object's visited bit -- objects are never moved.  On eviction, the hand
skips over visited objects (clearing their bits) and evicts the first
unvisited object it finds; new objects are inserted at the head.

The queue is an intrusive doubly-linked list so every operation (hit, admit,
evict, hand movement step) is O(1).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class _Node:
    """Doubly-linked-list node; ``newer``/``older`` follow recency of insertion."""

    __slots__ = ("key", "newer", "older", "visited")

    def __init__(self, key: int):
        self.key = key
        self.newer: Optional["_Node"] = None
        self.older: Optional["_Node"] = None
        self.visited = False


class SieveCache(EvictionPolicy):
    """SIEVE: lazy promotion + quick demotion with a single sweeping hand."""

    policy_name = "SIEVE"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._nodes: Dict[int, _Node] = {}
        self._head: Optional[_Node] = None  # newest
        self._tail: Optional[_Node] = None  # oldest
        self._hand: Optional[_Node] = None

    # -- linked-list helpers ---------------------------------------------------

    def _insert_at_head(self, node: _Node) -> None:
        node.newer = None
        node.older = self._head
        if self._head is not None:
            self._head.newer = node
        self._head = node
        if self._tail is None:
            self._tail = node

    def _unlink(self, node: _Node) -> None:
        if node.newer is not None:
            node.newer.older = node.older
        else:
            self._head = node.older
        if node.older is not None:
            node.older.newer = node.newer
        else:
            self._tail = node.newer
        node.newer = None
        node.older = None

    # -- hooks -------------------------------------------------------------------

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        node = self._nodes.get(obj.key)
        if node is not None:
            node.visited = True

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        node = _Node(obj.key)
        self._nodes[obj.key] = node
        self._insert_at_head(node)

    def on_evict(self, obj: CachedObject, now: int) -> None:
        node = self._nodes.pop(obj.key, None)
        if node is None:  # pragma: no cover - defensive
            return
        if self._hand is node:
            self._hand = node.newer
        self._unlink(node)

    def choose_victim(self, incoming: Request) -> Optional[int]:
        if self._tail is None:
            return None
        node = self._hand if self._hand is not None else self._tail
        # Bounded sweep: after one full pass every visited bit is cleared, so
        # the second pass must find an unvisited object.
        for _ in range(2 * len(self._nodes) + 1):
            if node is None:
                node = self._tail
            if not node.visited:
                self._hand = node.newer
                return node.key
            node.visited = False
            node = node.newer
        return self._tail.key  # pragma: no cover - unreachable
