"""S3-FIFO eviction (Yang et al., SOSP '23: "FIFO queues are all you need").

Three queues:

* a **small** FIFO (by default 10 % of the capacity) absorbing new objects,
* a **main** FIFO holding objects that proved their worth,
* a **ghost** FIFO of keys recently evicted from the small queue.

Objects evicted from the small queue are promoted to the main queue if they
were accessed at least once while resident, otherwise their key goes to the
ghost queue.  A miss whose key is still in the ghost queue is inserted
directly into the main queue.  Main-queue eviction gives objects with a
non-zero frequency another lap (reinsertion with decremented frequency).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class S3FIFOCache(EvictionPolicy):
    """S3-FIFO with a byte-sized small queue and a key-count-bounded ghost."""

    policy_name = "S3-FIFO"

    #: Fraction of the capacity dedicated to the small queue.
    SMALL_FRACTION = 0.10
    #: Frequency cap (the original uses a 2-bit counter).
    MAX_FREQ = 3

    def __init__(self, capacity: int, small_fraction: float = SMALL_FRACTION):
        super().__init__(capacity)
        if not 0.0 < small_fraction < 1.0:
            raise ValueError("small_fraction must be in (0, 1)")
        self.small_target = max(1, int(capacity * small_fraction))
        self._small: "OrderedDict[int, None]" = OrderedDict()
        self._main: "OrderedDict[int, None]" = OrderedDict()
        self._small_bytes = 0
        self._main_bytes = 0
        self._ghost: "OrderedDict[int, None]" = OrderedDict()
        self._ghost_limit = 0  # recomputed as objects flow through
        self._hit_ghost = False

    # -- internal helpers -----------------------------------------------------

    def _ghost_capacity(self) -> int:
        """Bound the ghost list to roughly the number of main-queue objects."""
        return max(16, len(self._main) + len(self._small))

    def _remember_ghost(self, key: int) -> None:
        self._ghost[key] = None
        self._ghost.move_to_end(key)
        limit = self._ghost_capacity()
        while len(self._ghost) > limit:
            self._ghost.popitem(last=False)

    # -- hooks ------------------------------------------------------------------

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        freq = int(obj.extra.get("freq", 0))
        obj.extra["freq"] = min(self.MAX_FREQ, freq + 1)

    def on_miss(self, request: Request) -> None:
        self._hit_ghost = request.key in self._ghost
        if self._hit_ghost:
            self._ghost.pop(request.key, None)

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        obj.extra["freq"] = 0
        if self._hit_ghost:
            obj.extra["queue"] = "main"
            self._main[obj.key] = None
            self._main_bytes += obj.size
        else:
            obj.extra["queue"] = "small"
            self._small[obj.key] = None
            self._small_bytes += obj.size
        self._hit_ghost = False

    def on_evict(self, obj: CachedObject, now: int) -> None:
        queue = obj.extra.get("queue")
        if queue == "small":
            self._small.pop(obj.key, None)
            self._small_bytes -= obj.size
            if int(obj.extra.get("freq", 0)) == 0:
                self._remember_ghost(obj.key)
        else:
            self._main.pop(obj.key, None)
            self._main_bytes -= obj.size

    # -- eviction ----------------------------------------------------------------

    def _promote_to_main(self, key: int) -> None:
        obj = self.get(key)
        if obj is None:  # pragma: no cover - defensive
            return
        self._small.pop(key, None)
        self._small_bytes -= obj.size
        obj.extra["queue"] = "main"
        obj.extra["freq"] = 0
        self._main[key] = None
        self._main_bytes += obj.size

    def _victim_from_small(self) -> Optional[int]:
        while self._small:
            key = next(iter(self._small))
            obj = self.get(key)
            if obj is None:  # pragma: no cover - defensive
                self._small.pop(key, None)
                continue
            if int(obj.extra.get("freq", 0)) > 0:
                self._promote_to_main(key)
                continue
            return key
        return None

    def _victim_from_main(self) -> Optional[int]:
        # Bounded lap: every reinsertion decrements the frequency, so after at
        # most MAX_FREQ * len(main) steps an object with freq == 0 exists.
        for _ in range(self.MAX_FREQ * len(self._main) + 1):
            if not self._main:
                return None
            key = next(iter(self._main))
            obj = self.get(key)
            if obj is None:  # pragma: no cover - defensive
                self._main.pop(key, None)
                continue
            freq = int(obj.extra.get("freq", 0))
            if freq > 0:
                obj.extra["freq"] = freq - 1
                self._main.move_to_end(key)
                continue
            return key
        return next(iter(self._main)) if self._main else None

    def choose_victim(self, incoming: Request) -> Optional[int]:
        if self._small_bytes > self.small_target or not self._main:
            victim = self._victim_from_small()
            if victim is not None:
                return victim
        victim = self._victim_from_main()
        if victim is not None:
            return victim
        return self._victim_from_small()
