"""Common machinery shared by every eviction policy.

The division of labour between the simulator and a policy:

* the **simulator** drives the request loop and keeps the hit/miss counters;
* the **policy** owns the cached-object table, byte accounting and the
  eviction decision.

Simple policies only implement :meth:`EvictionPolicy.choose_victim` plus the
``on_hit`` / ``on_admit`` / ``on_evict`` hooks; structurally richer policies
(ARC, LIRS, S3-FIFO, ...) additionally maintain their own ghost lists inside
those hooks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, Iterator, List, Optional

from repro.cache.request import Request


@dataclass
class CachedObject:
    """Metadata tracked for every resident object.

    ``extra`` is a scratch dictionary individual policies may use for their
    own bookkeeping (e.g. SIEVE's visited bit, GDSF's priority).
    """

    key: int
    size: int
    insert_time: int
    last_access_time: int
    access_count: int = 1
    extra: Dict[str, object] = field(default_factory=dict)

    def age(self, now: int) -> int:
        """Time since last access."""
        return now - self.last_access_time

    def residency(self, now: int) -> int:
        """Time since the object entered the cache."""
        return now - self.insert_time


EvictionListener = Callable[[CachedObject, int], None]


class EvictionPolicy(ABC):
    """Base class for eviction policies.

    Parameters
    ----------
    capacity:
        Cache capacity in bytes.  Objects larger than the capacity are never
        admitted (the simulator counts them as bypassed misses).
    """

    policy_name: ClassVar[str] = "base"

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._objects: Dict[int, CachedObject] = {}
        self._used = 0
        self.eviction_count = 0
        self.admission_count = 0
        self._eviction_listeners: List[EvictionListener] = []

    # -- inspection ----------------------------------------------------------

    def __contains__(self, key: int) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[CachedObject]:
        return iter(self._objects.values())

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._used

    def get(self, key: int) -> Optional[CachedObject]:
        return self._objects.get(key)

    def keys(self) -> List[int]:
        return list(self._objects.keys())

    def add_eviction_listener(self, listener: EvictionListener) -> None:
        """Register a callback invoked as ``listener(evicted_object, now)``."""
        self._eviction_listeners.append(listener)

    def check_invariants(self) -> None:
        """Assert internal consistency (used by property-based tests)."""
        assert self._used == sum(o.size for o in self._objects.values()), (
            f"{self.policy_name}: used-bytes accounting is inconsistent"
        )
        assert self._used <= self.capacity, (
            f"{self.policy_name}: capacity exceeded ({self._used} > {self.capacity})"
        )

    # -- request handling ----------------------------------------------------

    def lookup(self, request: Request) -> bool:
        """Return True on a hit, updating recency/frequency metadata."""
        obj = self._objects.get(request.key)
        if obj is None:
            self.on_miss(request)
            return False
        obj.access_count += 1
        obj.last_access_time = request.timestamp
        self.on_hit(request, obj)
        return True

    def should_admit(self, request: Request) -> bool:
        """Admission control hook; the default admits everything that fits."""
        return request.size <= self.capacity

    def admit(self, request: Request) -> None:
        """Insert ``request``'s object, evicting as needed to make room."""
        if request.size > self.capacity:
            raise ValueError(
                f"object {request.key} ({request.size} B) exceeds cache capacity"
            )
        if request.key in self._objects:
            return
        while self._used + request.size > self.capacity:
            victim = self.choose_victim(request)
            if victim is None or victim not in self._objects:
                raise RuntimeError(
                    f"{self.policy_name}: choose_victim returned invalid key {victim!r}"
                )
            self.evict(victim, request.timestamp)
        obj = CachedObject(
            key=request.key,
            size=request.size,
            insert_time=request.timestamp,
            last_access_time=request.timestamp,
            access_count=1,
        )
        self._objects[request.key] = obj
        self._used += request.size
        self.admission_count += 1
        self.on_admit(request, obj)

    def evict(self, key: int, now: int) -> CachedObject:
        """Remove ``key`` from the cache and fire eviction hooks."""
        obj = self._objects.pop(key)
        self._used -= obj.size
        self.eviction_count += 1
        self.on_evict(obj, now)
        for listener in self._eviction_listeners:
            listener(obj, now)
        return obj

    # -- hooks for subclasses -------------------------------------------------

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        """Called after metadata update on every hit."""

    def on_miss(self, request: Request) -> None:
        """Called on every miss, before any admission decision."""

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        """Called after the object has been inserted."""

    def on_evict(self, obj: CachedObject, now: int) -> None:
        """Called after the object has been removed."""

    @abstractmethod
    def choose_victim(self, incoming: Request) -> Optional[int]:
        """Return the key of the object to evict next."""
