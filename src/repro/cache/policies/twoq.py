"""2Q eviction (Johnson & Shasha, VLDB '94).

Three structures:

* **A1in** -- a FIFO of objects seen exactly once, absorbing scans,
* **A1out** -- a ghost list of keys recently evicted from A1in,
* **Am** -- an LRU of objects that were re-referenced while in A1out.

New objects enter A1in; a miss whose key is in A1out is promoted straight
into Am; hits inside A1in do not move the object (that is the point: one-hit
wonders age out of A1in untouched).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class TwoQCache(EvictionPolicy):
    """2Q with byte-based A1in sizing (default K_in = 25 % of capacity)."""

    policy_name = "TwoQ"

    KIN_FRACTION = 0.25
    KOUT_FRACTION = 0.50

    def __init__(
        self,
        capacity: int,
        kin_fraction: float = KIN_FRACTION,
        kout_fraction: float = KOUT_FRACTION,
    ):
        super().__init__(capacity)
        self.kin_target = max(1, int(capacity * kin_fraction))
        self.kout_target = max(1, int(capacity * kout_fraction))
        self._a1in: "OrderedDict[int, None]" = OrderedDict()
        self._am: "OrderedDict[int, None]" = OrderedDict()
        self._a1out: "OrderedDict[int, int]" = OrderedDict()  # key -> size
        self._a1in_bytes = 0
        self._a1out_bytes = 0
        self._pending_promoted = False

    # -- hooks ------------------------------------------------------------------

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        if obj.key in self._am:
            self._am.move_to_end(obj.key)
        # Hits in A1in deliberately do not reorder anything.

    def on_miss(self, request: Request) -> None:
        self._pending_promoted = request.key in self._a1out
        if self._pending_promoted:
            size = self._a1out.pop(request.key)
            self._a1out_bytes -= size

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        if self._pending_promoted:
            self._am[obj.key] = None
            obj.extra["twoq_list"] = "am"
        else:
            self._a1in[obj.key] = None
            self._a1in_bytes += obj.size
            obj.extra["twoq_list"] = "a1in"
        self._pending_promoted = False

    def on_evict(self, obj: CachedObject, now: int) -> None:
        if obj.key in self._a1in:
            self._a1in.pop(obj.key)
            self._a1in_bytes -= obj.size
            self._a1out[obj.key] = obj.size
            self._a1out_bytes += obj.size
            while self._a1out and self._a1out_bytes > self.kout_target:
                _key, size = self._a1out.popitem(last=False)
                self._a1out_bytes -= size
        else:
            self._am.pop(obj.key, None)

    def choose_victim(self, incoming: Request) -> Optional[int]:
        if self._a1in and (self._a1in_bytes > self.kin_target or not self._am):
            return next(iter(self._a1in))
        if self._am:
            return next(iter(self._am))
        if self._a1in:
            return next(iter(self._a1in))
        return None
