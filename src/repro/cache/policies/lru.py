"""LRU eviction: evict the least recently used object."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class LRUCache(EvictionPolicy):
    """Least-recently-used eviction backed by an ordered dictionary."""

    policy_name = "LRU"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        self._order.move_to_end(obj.key)

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        self._order[obj.key] = None

    def on_evict(self, obj: CachedObject, now: int) -> None:
        self._order.pop(obj.key, None)

    def choose_victim(self, incoming: Request) -> Optional[int]:
        if not self._order:
            return None
        return next(iter(self._order))
