"""SR-LRU: scan-resistant LRU (the recency expert inside Cacheus, FAST '21).

The cache is split into two LRU partitions:

* **SR** ("scan resistant") holds objects seen exactly once since insertion;
  new objects enter at the MRU end of SR and scans churn only this partition;
* **R** ("reused") holds objects that have been re-referenced; a hit on an SR
  object promotes it to R.

Victims always come from the LRU end of SR (falling back to R only when SR
is empty).  When R grows beyond its target, its LRU object is demoted back to
SR.  A ghost history of objects evicted from SR nudges the partition split:
a miss that hits the history means the SR partition is too small, so the R
target shrinks slightly in favour of SR.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class SRLRUCache(EvictionPolicy):
    """Scan-resistant LRU with a lightly adaptive partition split."""

    policy_name = "SR-LRU"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._sr: "OrderedDict[int, None]" = OrderedDict()
        self._r: "OrderedDict[int, None]" = OrderedDict()
        self._sr_bytes = 0
        self._r_bytes = 0
        self._r_target = capacity // 2
        self._history: "OrderedDict[int, int]" = OrderedDict()  # key -> size
        self._history_bytes = 0

    # -- helpers -----------------------------------------------------------------

    def _remember(self, key: int, size: int) -> None:
        self._history[key] = size
        self._history.move_to_end(key)
        self._history_bytes += size
        while self._history and self._history_bytes > self.capacity:
            _key, dropped = self._history.popitem(last=False)
            self._history_bytes -= dropped

    def _rebalance(self) -> None:
        """Demote LRU objects of R into SR while R exceeds its target."""
        while self._r and self._r_bytes > self._r_target:
            key = next(iter(self._r))
            obj = self.get(key)
            if obj is None:  # pragma: no cover - defensive
                self._r.pop(key)
                continue
            self._r.pop(key)
            self._r_bytes -= obj.size
            self._sr[key] = None
            self._sr.move_to_end(key)
            self._sr_bytes += obj.size
            obj.extra["srlru_list"] = "sr"

    # -- hooks --------------------------------------------------------------------

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        key = obj.key
        if key in self._sr:
            self._sr.pop(key)
            self._sr_bytes -= obj.size
            self._r[key] = None
            self._r_bytes += obj.size
            obj.extra["srlru_list"] = "r"
            self._rebalance()
        elif key in self._r:
            self._r.move_to_end(key)

    def on_miss(self, request: Request) -> None:
        if request.key in self._history:
            size = self._history.pop(request.key)
            self._history_bytes -= size
            # The history hit means SR evicted something we still wanted:
            # give SR more room by shrinking the R target.
            self._r_target = max(self.capacity // 10, self._r_target - request.size)
        else:
            self._r_target = min(
                (9 * self.capacity) // 10, self._r_target + max(1, request.size // 4)
            )

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        self._sr[obj.key] = None
        self._sr_bytes += obj.size
        obj.extra["srlru_list"] = "sr"

    def on_evict(self, obj: CachedObject, now: int) -> None:
        if obj.key in self._sr:
            self._sr.pop(obj.key)
            self._sr_bytes -= obj.size
            self._remember(obj.key, obj.size)
        elif obj.key in self._r:
            self._r.pop(obj.key)
            self._r_bytes -= obj.size

    def choose_victim(self, incoming: Request) -> Optional[int]:
        if self._sr:
            return next(iter(self._sr))
        if self._r:
            return next(iter(self._r))
        return None
