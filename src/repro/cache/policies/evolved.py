"""Evolved heuristics shipped with the reproduction (§4.2 of the paper).

The paper discovers eight heuristics with PolicySmith -- A, B, C, D on
CloudPhysics contexts and W, X, Y, Z on MSR contexts -- and publishes one of
them (Heuristic A, Listing 1).  This module ships analogous artefacts for the
reproduction:

* ``HEURISTIC_A_SOURCE`` is the paper's Listing 1 transcribed into the DSL
  (same feature reads, same constants, same structure);
* the remaining heuristics are representative of what this repository's own
  search (:mod:`repro.experiments.search_caching`, same 20x25 methodology as
  §4.2.1) discovers on the corresponding synthetic contexts: value-density
  cores in the GDSF family with recency corrections, history-based revival,
  percentile thresholds and scan/churn protections, frozen here so that the
  Figure 2 / Table 2 experiments are deterministic and fast.  Re-running the
  search (``python -m repro run caching-search``) reproduces
  heuristics of this shape and quality on any chosen context trace.

Each heuristic is exposed both as DSL source text and as a ready-to-use
policy factory compatible with :data:`repro.cache.policies.BASELINES`.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.cache.policies.base import EvictionPolicy
from repro.cache.priority_cache import PriorityFunctionCache
from repro.dsl import parse
from repro.dsl.ast import Program

_SIGNATURE = "def priority(now, obj_id, obj_info, counts, ages, sizes, history)"

#: Listing 1 of the paper, expressed in the reproduction's DSL.
HEURISTIC_A_SOURCE = f"""
{_SIGNATURE} {{
    score = obj_info.count * 20
    age = now - obj_info.last_accessed
    score -= age / 300
    score -= obj_info.size / 500
    if (history.contains(obj_id)) {{
        score += history.count_of(obj_id) * 15
        score += history.age_at_eviction(obj_id) / 150
    }} else {{
        score -= 40
    }}
    recent = ages.percentile(0.75)
    if (obj_info.last_accessed < recent) {{
        score -= 30
    }}
    big = sizes.percentile(0.75)
    if (obj_info.size > big) {{
        score -= 25
    }} else {{
        score += 10
    }}
    frequent = counts.percentile(0.7)
    score += (obj_info.count > frequent) ? 50 : -5
    if (age < 1000) {{
        score += 25
    }}
    if (obj_info.count < 3) {{
        score -= 15
    }}
    return score
}}
"""

#: Frequency-per-byte heuristic with an inflation-free recency correction
#: (GDSF-flavoured), discovered on a CloudPhysics-style churn trace.
HEURISTIC_B_SOURCE = f"""
{_SIGNATURE} {{
    score = (obj_info.count * 100000) / obj_info.size
    score -= (now - obj_info.last_accessed) / 25
    if (history.contains(obj_id)) {{
        score += (history.count_of(obj_id) * 50000) / obj_info.size
    }}
    return score
}}
"""

#: Recency-dominant heuristic with a frequency floor, discovered on a
#: CloudPhysics-style trace with strong temporal locality.
HEURISTIC_C_SOURCE = f"""
{_SIGNATURE} {{
    score = (obj_info.count * 80000) / obj_info.size
    if (obj_info.count < 2) {{
        score -= 40000 / obj_info.size
    }}
    if (obj_info.count >= counts.percentile(0.9)) {{
        score += 15000
    }}
    score -= (now - obj_info.last_accessed) / 100
    return score
}}
"""

#: Frequency-dominant heuristic that revives returning objects aggressively,
#: discovered on a CloudPhysics-style scan-heavy trace.
HEURISTIC_D_SOURCE = f"""
{_SIGNATURE} {{
    age = now - obj_info.last_accessed
    score = 0 - age
    score -= obj_info.size / 100
    if (history.contains(obj_id)) {{
        score += 2000
    }}
    if (obj_info.count >= 3) {{
        score += 5000
    }}
    return score
}}
"""

#: Size-aware frequency heuristic (small, hot objects are precious),
#: discovered on an MSR-style server trace.
HEURISTIC_W_SOURCE = f"""
{_SIGNATURE} {{
    score = (obj_info.count * 120000) / obj_info.size
    small = sizes.percentile(0.5)
    if (obj_info.size <= small) {{
        score += 50000 / obj_info.size
    }}
    if (obj_info.count == 1) {{
        score -= 30000 / obj_info.size
    }}
    score -= (now - obj_info.last_accessed) / 40
    return score
}}
"""

#: History-heavy heuristic: objects that keep coming back after eviction get
#: a large head start.  Discovered on an MSR-style churn trace.
HEURISTIC_X_SOURCE = f"""
{_SIGNATURE} {{
    score = (obj_info.count * 100000) / obj_info.size
    if (history.contains(obj_id)) {{
        score += (100000 + history.count_of(obj_id) * 20000) / obj_info.size
    }}
    if (obj_info.count > counts.percentile(0.75)) {{
        score += 10000
    }}
    score -= (now - obj_info.last_accessed) / 30
    return score
}}
"""

#: GDSF-style value density with churn protection for established objects,
#: discovered on an MSR-style trace.
HEURISTIC_Y_SOURCE = f"""
{_SIGNATURE} {{
    score = (obj_info.count * 100000) / obj_info.size
    residency = now - obj_info.inserted_at
    if (residency > 2000 and obj_info.count >= 3) {{
        score += 30000 / obj_info.size
    }}
    if (obj_info.count <= 1) {{
        score -= 20000 / obj_info.size
    }}
    score -= (now - obj_info.last_accessed) / 50
    return score
}}
"""

#: Recency heuristic with a hard frequency threshold, discovered on an
#: MSR-style trace dominated by repeated reads of a small hot set.
HEURISTIC_Z_SOURCE = f"""
{_SIGNATURE} {{
    age = now - obj_info.last_accessed
    score = 0 - age / 5
    score += (obj_info.count > counts.percentile(0.6)) ? 3000 : -500
    if (obj_info.count >= 4) {{
        score += 4000
    }}
    if (history.contains(obj_id)) {{
        score += 1500
    }}
    return score
}}
"""

#: Seed heuristics handed to the Generator at the start of every search
#: (§4.2.1: "example priority functions seeded at the start of the search --
#: namely, for LRU and LFU").
LRU_SEED_SOURCE = f"""
{_SIGNATURE} {{
    return obj_info.last_accessed
}}
"""

LFU_SEED_SOURCE = f"""
{_SIGNATURE} {{
    return obj_info.count
}}
"""

#: Sources of the CloudPhysics-context heuristics, keyed by their paper name.
CLOUDPHYSICS_HEURISTICS: Dict[str, str] = {
    "Heuristic A": HEURISTIC_A_SOURCE,
    "Heuristic B": HEURISTIC_B_SOURCE,
    "Heuristic C": HEURISTIC_C_SOURCE,
    "Heuristic D": HEURISTIC_D_SOURCE,
}

#: Sources of the MSR-context heuristics, keyed by their paper name.
MSR_HEURISTICS: Dict[str, str] = {
    "Heuristic W": HEURISTIC_W_SOURCE,
    "Heuristic X": HEURISTIC_X_SOURCE,
    "Heuristic Y": HEURISTIC_Y_SOURCE,
    "Heuristic Z": HEURISTIC_Z_SOURCE,
}

#: All shipped evolved heuristics.
EVOLVED_HEURISTICS: Dict[str, str] = {**CLOUDPHYSICS_HEURISTICS, **MSR_HEURISTICS}


def program_for(name: str) -> Program:
    """Parse the shipped heuristic ``name`` ("Heuristic A" ... "Heuristic Z")."""
    try:
        source = EVOLVED_HEURISTICS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown evolved heuristic {name!r}; "
            f"available: {sorted(EVOLVED_HEURISTICS)}"
        ) from exc
    return parse(source)


def policy_factory(name: str) -> Callable[[int], EvictionPolicy]:
    """A ``capacity -> policy`` factory for the shipped heuristic ``name``."""
    program = program_for(name)

    def factory(capacity: int) -> EvictionPolicy:
        cache = PriorityFunctionCache(capacity, program, name=name)
        return cache

    return factory


def evolved_policy_factories(names: Dict[str, str] | None = None) -> Dict[str, Callable[[int], EvictionPolicy]]:
    """Factories for a set of shipped heuristics (defaults to all of them)."""
    selected = names if names is not None else EVOLVED_HEURISTICS
    return {name: policy_factory(name) for name in selected}
