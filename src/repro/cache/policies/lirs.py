"""LIRS: Low Inter-reference Recency Set replacement (Jiang & Zhang, 2002).

LIRS classifies resident objects into LIR (low inter-reference recency,
"hot") and HIR ("cold") blocks.  Two structures are maintained:

* **stack S** -- a recency stack holding LIR blocks, resident HIR blocks and
  non-resident HIR ghosts; the bottom of S is always a LIR block (stack
  pruning),
* **queue Q** -- a FIFO of resident HIR blocks, which supplies eviction
  victims.

A resident HIR block that is re-referenced while still in S has, by
construction, an inter-reference recency smaller than the oldest LIR block,
so it is promoted to LIR and the bottom LIR block is demoted into Q.

The implementation generalises block counts to bytes: the LIR set is sized
at ``(1 - hir_fraction)`` of the capacity (1 % HIR by default, as in the
paper).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request

_LIR = "LIR"
_HIR = "HIR"


class LIRSCache(EvictionPolicy):
    """LIRS with byte-based LIR sizing and a bounded ghost stack."""

    policy_name = "LIRS"

    HIR_FRACTION = 0.01

    def __init__(self, capacity: int, hir_fraction: float = HIR_FRACTION):
        super().__init__(capacity)
        if not 0.0 < hir_fraction < 1.0:
            raise ValueError("hir_fraction must be in (0, 1)")
        self.lir_target = max(1, int(capacity * (1.0 - hir_fraction)))
        # Stack S: key -> status; insertion order == recency (end = most recent).
        self._stack: "OrderedDict[int, str]" = OrderedDict()
        # Queue Q: resident HIR keys in FIFO order.
        self._queue: "OrderedDict[int, None]" = OrderedDict()
        self._lir_bytes = 0
        # Ghost entries (non-resident HIR) are bounded to keep S small.
        self._max_ghosts = 4096

    # -- helpers -----------------------------------------------------------------

    def _status(self, key: int) -> Optional[str]:
        return self._stack.get(key)

    def _is_resident(self, key: int) -> bool:
        return key in self._objects

    def _stack_prune(self) -> None:
        """Remove HIR entries from the bottom of S until a LIR block is at the bottom."""
        while self._stack:
            key = next(iter(self._stack))
            if self._stack[key] == _LIR:
                break
            self._stack.pop(key)

    def _limit_ghosts(self) -> None:
        ghosts = [
            key
            for key, status in self._stack.items()
            if status == _HIR and not self._is_resident(key)
        ]
        excess = len(ghosts) - self._max_ghosts
        for key in ghosts[: max(0, excess)]:
            self._stack.pop(key, None)

    def _demote_bottom_lir(self) -> None:
        """Turn the bottom LIR block into a resident HIR block at the tail of Q."""
        self._stack_prune()
        if not self._stack:
            return
        key = next(iter(self._stack))
        if self._stack[key] != _LIR:  # pragma: no cover - defensive
            return
        self._stack.pop(key)
        obj = self.get(key)
        if obj is not None:
            self._lir_bytes -= obj.size
            self._queue[key] = None
            obj.extra["lirs_status"] = _HIR
        self._stack_prune()

    def _promote_to_lir(self, key: int, size: int) -> None:
        self._stack[key] = _LIR
        self._stack.move_to_end(key)
        self._queue.pop(key, None)
        self._lir_bytes += size
        obj = self.get(key)
        if obj is not None:
            obj.extra["lirs_status"] = _LIR
        while self._lir_bytes > self.lir_target:
            self._demote_bottom_lir()

    # -- hooks ---------------------------------------------------------------------

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        key = obj.key
        status = self._status(key)
        if status == _LIR:
            self._stack[key] = _LIR
            self._stack.move_to_end(key)
            self._stack_prune()
        elif key in self._queue:
            # Resident HIR block.
            if status == _HIR and key in self._stack:
                # Re-referenced while still in S: promote to LIR.
                self._stack.pop(key)
                self._promote_to_lir(key, obj.size)
            else:
                # Not in S any more: stay HIR, refresh recency in both.
                self._stack[key] = _HIR
                self._stack.move_to_end(key)
                self._queue.move_to_end(key)
        else:  # pragma: no cover - defensive
            self._stack[key] = _HIR
            self._stack.move_to_end(key)

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        key = obj.key
        in_stack = key in self._stack
        if self._lir_bytes + obj.size <= self.lir_target and not self._queue:
            # Cold-start: fill the LIR set first.
            self._stack[key] = _LIR
            self._stack.move_to_end(key)
            self._lir_bytes += obj.size
            obj.extra["lirs_status"] = _LIR
            return
        if in_stack:
            # Non-resident HIR that is still in S: its reuse distance beats the
            # bottom LIR block, so it becomes LIR.
            self._stack.pop(key)
            obj.extra["lirs_status"] = _LIR
            self._promote_to_lir(key, obj.size)
        else:
            self._stack[key] = _HIR
            self._stack.move_to_end(key)
            self._queue[key] = None
            obj.extra["lirs_status"] = _HIR
        self._limit_ghosts()

    def on_evict(self, obj: CachedObject, now: int) -> None:
        key = obj.key
        if obj.extra.get("lirs_status") == _LIR:
            # Should only happen when the LIR target shrank below residency;
            # treat it as a demotion.
            if self._stack.get(key) == _LIR:
                self._stack.pop(key, None)
                self._lir_bytes -= obj.size
        self._queue.pop(key, None)
        # The key may stay in S as a non-resident ghost (that is the point of
        # LIRS); _limit_ghosts bounds the memory.

    def choose_victim(self, incoming: Request) -> Optional[int]:
        # Victims come from the front of Q (resident HIR blocks).
        while self._queue:
            key = next(iter(self._queue))
            if self._is_resident(key):
                return key
            self._queue.pop(key)  # pragma: no cover - defensive
        # No resident HIR block: demote the bottom LIR block and retry once.
        self._demote_bottom_lir()
        if self._queue:
            return next(iter(self._queue))
        # Degenerate fallback: evict the oldest resident object.
        if self._objects:
            return min(self._objects.values(), key=lambda o: o.last_access_time).key
        return None
