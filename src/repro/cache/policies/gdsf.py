"""GDSF: Greedy-Dual-Size-Frequency eviction (Cherkasova, 1998).

Each object carries a priority ``L + frequency * cost / size`` where ``L`` is
an inflation clock equal to the priority of the last evicted object.  Small,
frequently accessed objects therefore out-survive large, cold ones, which is
why GDSF is the strongest baseline on the paper's size-heterogeneous block
I/O traces (§4.2.4 notes only GDSF edges out the synthesized heuristics on
corpus-wide average).

The miss cost is uniform (1) so the priority reduces to ``L + freq / size``.
A lazy min-heap keeps eviction O(log N).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class GDSFCache(EvictionPolicy):
    """Greedy-Dual-Size-Frequency with a lazily invalidated min-heap."""

    policy_name = "GDSF"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._clock = 0.0
        # Heap entries: (priority, generation, key).  Stale entries are
        # skipped when popped (their generation no longer matches).
        self._heap: List[Tuple[float, int, int]] = []
        self._generation = 0

    def _priority(self, obj: CachedObject) -> float:
        return self._clock + obj.access_count / max(1, obj.size)

    def _push(self, obj: CachedObject) -> None:
        self._generation += 1
        obj.extra["gdsf_gen"] = self._generation
        priority = self._priority(obj)
        obj.extra["gdsf_priority"] = priority
        heapq.heappush(self._heap, (priority, self._generation, obj.key))

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        self._push(obj)

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        self._push(obj)

    def choose_victim(self, incoming: Request) -> Optional[int]:
        while self._heap:
            priority, generation, key = self._heap[0]
            obj = self.get(key)
            if obj is None or obj.extra.get("gdsf_gen") != generation:
                heapq.heappop(self._heap)
                continue
            # Inflate the clock to the victim's priority (Greedy-Dual rule).
            self._clock = priority
            return key
        return None
