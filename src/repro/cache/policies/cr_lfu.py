"""CR-LFU: churn-resistant LFU (the frequency expert inside Cacheus, FAST '21).

Plain LFU with LRU tie-breaking behaves badly under *churn* -- a working set
of equal-frequency objects slightly larger than the cache cycling forever:
it always evicts the object about to be re-referenced.  CR-LFU breaks ties
among the lowest-frequency objects by evicting the **most recently used**
one, which keeps the established portion of the working set resident and
sacrifices the newest arrival instead.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.cache.policies.base import CachedObject, EvictionPolicy
from repro.cache.request import Request


class CRLFUCache(EvictionPolicy):
    """LFU with MRU tie-breaking via a lazily invalidated heap."""

    policy_name = "CR-LFU"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        # Heap key: (frequency, -last_access_time) so that among the least
        # frequently used objects the most recently touched one pops first.
        self._heap: List[Tuple[int, int, int, int]] = []
        self._generation = 0

    def _push(self, obj: CachedObject) -> None:
        self._generation += 1
        obj.extra["crlfu_gen"] = self._generation
        heapq.heappush(
            self._heap,
            (obj.access_count, -obj.last_access_time, self._generation, obj.key),
        )

    def on_hit(self, request: Request, obj: CachedObject) -> None:
        self._push(obj)

    def on_admit(self, request: Request, obj: CachedObject) -> None:
        self._push(obj)

    def choose_victim(self, incoming: Request) -> Optional[int]:
        while self._heap:
            _freq, _neg_last, generation, key = self._heap[0]
            obj = self.get(key)
            if obj is None or obj.extra.get("crlfu_gen") != generation:
                heapq.heappop(self._heap)
                continue
            return key
        return None
