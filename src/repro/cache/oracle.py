"""Oracle selectors used in Figure 2 (§4.2.4).

The paper reports two per-trace oracles that model *ideal* runtime
adaptation -- a system that always knows which policy to run for a given
trace:

* **B-Oracle** picks, for each trace, the best-performing policy among the
  fourteen baselines;
* **PS-Oracle** picks the best among the baselines *plus* the
  PolicySmith-synthesized heuristics.

Both operate on already-collected :class:`SimulationResult` tables, so they
are simple argmax selectors -- which is exactly what they are in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Sequence

from repro.cache.metrics import SimulationResult


@dataclass
class OracleSelection:
    """The oracle's choice for one trace."""

    trace: str
    chosen_policy: str
    miss_ratio: float
    improvement_over_fifo: float


class Oracle:
    """Per-trace argmax selector over a set of candidate policies."""

    def __init__(self, name: str, candidate_policies: Sequence[str]):
        self.name = name
        self.candidate_policies = list(candidate_policies)

    def select(
        self,
        results_by_trace: Mapping[str, Mapping[str, SimulationResult]],
        baseline: str = "FIFO",
    ) -> List[OracleSelection]:
        """For each trace, pick the candidate with the lowest miss ratio.

        ``results_by_trace`` maps ``trace name -> policy name -> result``.
        The FIFO result must be present for the improvement computation.
        """
        selections: List[OracleSelection] = []
        for trace_name, per_policy in results_by_trace.items():
            if baseline not in per_policy:
                raise KeyError(
                    f"trace {trace_name!r} is missing the {baseline!r} baseline result"
                )
            available = [
                per_policy[name]
                for name in self.candidate_policies
                if name in per_policy
            ]
            if not available:
                raise KeyError(
                    f"trace {trace_name!r} has no results for oracle {self.name!r}"
                )
            best = min(available, key=lambda r: r.miss_ratio)
            selections.append(
                OracleSelection(
                    trace=trace_name,
                    chosen_policy=best.policy,
                    miss_ratio=best.miss_ratio,
                    improvement_over_fifo=best.improvement_over(per_policy[baseline]),
                )
            )
        return selections

    def mean_improvement(
        self,
        results_by_trace: Mapping[str, Mapping[str, SimulationResult]],
        baseline: str = "FIFO",
    ) -> float:
        """Average improvement over the baseline across all traces."""
        selections = self.select(results_by_trace, baseline=baseline)
        if not selections:
            return 0.0
        return sum(s.improvement_over_fifo for s in selections) / len(selections)


def baseline_oracle(baseline_names: Iterable[str]) -> Oracle:
    """The paper's B-Oracle: best baseline per trace."""
    return Oracle("B-Oracle", list(baseline_names))


def policysmith_oracle(
    baseline_names: Iterable[str], heuristic_names: Iterable[str]
) -> Oracle:
    """The paper's PS-Oracle: best of baselines + synthesized heuristics."""
    return Oracle("PS-Oracle", list(baseline_names) + list(heuristic_names))
