"""Table-1 feature view exposed to synthesized ``priority()`` functions.

The paper's Template gives the generated priority function three classes of
features (§4.1.2, Table 1):

* **Per object** -- number of accesses, last access time, time added to the
  cache, object size (:class:`ObjectInfoView`);
* **Aggregates** -- percentiles over the access counts, ages and sizes of
  the objects currently in the cache (:class:`FeatureAggregates`);
* **History** -- recently evicted objects with their access count and age at
  eviction time (:class:`EvictionHistory`).

All three are :class:`~repro.dsl.interpreter.FeatureObject` subclasses, so
DSL programs can only touch the attributes/methods listed here.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.cache.policies.base import CachedObject
from repro.dsl.errors import DslRuntimeError
from repro.dsl.interpreter import FeatureObject


class ObjectInfoView(FeatureObject):
    """Read-only per-object metadata handed to the priority function.

    Exported attributes mirror Table 1: ``count`` (number of accesses),
    ``last_accessed``, ``inserted_at`` (time added to the cache) and ``size``.
    """

    exported_attrs = frozenset({"count", "last_accessed", "inserted_at", "size"})

    __slots__ = ("count", "last_accessed", "inserted_at", "size")

    def __init__(self, obj: CachedObject):
        self.count = obj.access_count
        self.last_accessed = obj.last_access_time
        self.inserted_at = obj.insert_time
        self.size = obj.size

    @classmethod
    def from_fields(
        cls, count: int, last_accessed: int, inserted_at: int, size: int
    ) -> "ObjectInfoView":
        """Build a view without a :class:`CachedObject` (used in tests)."""
        view = cls.__new__(cls)
        view.count = count
        view.last_accessed = last_accessed
        view.inserted_at = inserted_at
        view.size = size
        return view


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over a pre-sorted sequence."""
    if not sorted_values:
        return 0.0
    fraction = min(1.0, max(0.0, fraction))
    index = min(len(sorted_values) - 1, int(math.ceil(fraction * len(sorted_values))) - 1)
    index = max(0, index)
    return float(sorted_values[index])


class FeatureAggregates(FeatureObject):
    """Percentile / summary statistics over one attribute of the cached set.

    The priority cache refreshes the underlying snapshot periodically (every
    ``refresh_interval`` requests) rather than on every access, which keeps
    the per-request cost O(log N) as required by the Template constraints.

    ``percentile`` accepts either a fraction in ``[0, 1]`` or an integer
    percentage in ``(1, 100]`` -- the latter lets integer-only (kernel-style)
    candidates use aggregates without floating-point literals.
    """

    exported_methods = frozenset({"percentile", "mean", "minimum", "maximum", "count"})

    def __init__(self, values: Optional[Iterable[float]] = None):
        self._sorted: List[float] = sorted(values) if values is not None else []
        self._sum = float(sum(self._sorted))

    def update(self, values: Iterable[float]) -> None:
        """Replace the snapshot with fresh values."""
        self._sorted = sorted(values)
        self._sum = float(sum(self._sorted))

    # -- methods visible to generated code -------------------------------------

    def percentile(self, fraction: float) -> float:
        if isinstance(fraction, bool) or not isinstance(fraction, (int, float)):
            raise DslRuntimeError("percentile() expects a numeric argument")
        if fraction > 1.0:
            fraction = fraction / 100.0
        return _percentile(self._sorted, float(fraction))

    def mean(self) -> float:
        if not self._sorted:
            return 0.0
        return self._sum / len(self._sorted)

    def minimum(self) -> float:
        return float(self._sorted[0]) if self._sorted else 0.0

    def maximum(self) -> float:
        return float(self._sorted[-1]) if self._sorted else 0.0

    def count(self) -> int:
        return len(self._sorted)


@dataclass(frozen=True)
class EvictedRecord:
    """Metadata captured for an object at the moment it was evicted."""

    key: int
    evicted_at: int
    access_count: int
    age_at_eviction: int
    size: int


class EvictionHistory(FeatureObject):
    """Bounded record of recently evicted objects (Table 1, "History").

    Generated code can ask whether an object was recently evicted and, if so,
    recover the access count and age it had at eviction time -- the signal
    Listing 1 uses to give returning objects a head start.
    """

    exported_methods = frozenset(
        {
            "contains",
            "count_of",
            "age_at_eviction",
            "size_of",
            "time_since_eviction",
            "length",
        }
    )

    def __init__(self, max_entries: int = 1024):
        if max_entries <= 0:
            raise ValueError("history must keep at least one entry")
        self.max_entries = max_entries
        self._records: "OrderedDict[int, EvictedRecord]" = OrderedDict()
        self._now = 0

    # -- maintenance (called by the cache, not by generated code) ----------------

    def record(self, obj: CachedObject, now: int) -> None:
        record = EvictedRecord(
            key=obj.key,
            evicted_at=now,
            access_count=obj.access_count,
            age_at_eviction=max(0, now - obj.last_access_time),
            size=obj.size,
        )
        self._records[obj.key] = record
        self._records.move_to_end(obj.key)
        while len(self._records) > self.max_entries:
            self._records.popitem(last=False)

    def set_now(self, now: int) -> None:
        self._now = now

    def records(self) -> List[EvictedRecord]:
        return list(self._records.values())

    # -- methods visible to generated code -----------------------------------------

    def contains(self, key: int) -> bool:
        return key in self._records

    def _get(self, key: int) -> Optional[EvictedRecord]:
        return self._records.get(key)

    def count_of(self, key: int) -> int:
        record = self._get(key)
        return record.access_count if record else 0

    def age_at_eviction(self, key: int) -> int:
        record = self._get(key)
        return record.age_at_eviction if record else 0

    def size_of(self, key: int) -> int:
        record = self._get(key)
        return record.size if record else 0

    def time_since_eviction(self, key: int) -> int:
        record = self._get(key)
        if record is None:
            return 0
        return max(0, self._now - record.evicted_at)

    def length(self) -> int:
        return len(self._records)
