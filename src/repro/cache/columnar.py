"""Fused columnar fast path for the priority cache (the vectorized backend).

The classic pipeline is layered for clarity: the simulator walks the trace,
the policy dispatches hook methods, every priority evaluation builds an
environment dict, and the DSL runner is invoked once per evaluation.  Those
layers dominate the runtime once the priority function itself is a compiled
kernel.  This module collapses them with code generation: one specialised
loop over struct-of-arrays trace columns is compiled per (program, policy)
pair, with the kernel's feature-column reads spliced inline at each
evaluation site -- store-entry slot reads, inlined eviction-history
expressions over the live records dict, and a per-refresh constant table
for loop-invariant aggregate calls.  A priority evaluation costs exactly
one Python frame (the kernel itself).

Why eager per-row scoring and not deferred numpy batches?  Both were built
and measured: :meth:`~repro.dsl.vectorize.VectorizedProgram.run_batch` is
3-4x faster than the scalar kernel once feature columns already live in
numpy arrays (that is the DSL-level batch API, and ``simulate_many``'s
per-candidate column sharing), but inside the simulator the features are
inherently produced row-by-row as the cache mutates, and the Python-value
-> ndarray conversion alone costs more than the generated scalar call.
Deferring evaluations to eviction decision points was measured slower than
this zero-layer loop at every realistic batch size, and eager scoring has
a stronger exactness story: every evaluation -- including one that raises
-- happens at the identical instant the classic loop would have evaluated.

Exactness contract: the fused run must be observationally identical to the
classic loop -- the returned :class:`SimulationResult`, every policy counter,
the final object table (including ``ps_gen``/``ps_score``), the heap, the
aggregates and the eviction history all match field-for-field, so tests and
downstream search code cannot tell which loop ran.  Scores are bit-identical
(the kernel is the same compiled function the classic loop calls), heap
pushes/pops happen in the classic order (even NaN scores leave the heap in
the same deterministic layout), and captures read the policy's *real*
:class:`FeatureAggregates`/:class:`EvictionHistory` objects, so snapshot
staleness semantics are inherited rather than re-implemented.

:func:`fused_cache_run` is conservative: anything it cannot replicate
exactly -- a subclassed policy, eviction listeners, invariant checking, a
non-vectorized priority function, an already-used policy, feature columns
outside the Table-1 vocabulary, or a trace without columnar form -- returns
``None`` and the caller falls back to the classic loop.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cache.features import EvictedRecord
from repro.cache.metrics import SimulationResult
from repro.cache.policies.base import CachedObject
from repro.cache.priority_cache import DslPriorityFunction, PriorityFunctionCache
from repro.dsl.vectorize import VectorizedProgram

#: Store-entry slots (plain lists are markedly faster than CachedObject in
#: the fused loop; the table is converted back on exit).
_COUNT, _LAST, _INSERTED, _SIZE, _GEN, _SCORE = range(6)

_ATTR_SLOT = {"count": _COUNT, "last_accessed": _LAST, "inserted_at": _INSERTED, "size": _SIZE}
_AGG_ARITY = {"percentile": 1, "mean": 0, "minimum": 0, "maximum": 0, "count": 0}
_HISTORY_ARITY = {
    "contains": 1,
    "count_of": 1,
    "age_at_eviction": 1,
    "size_of": 1,
    "time_since_eviction": 1,
    "length": 0,
}


def _convert_score(value: Any) -> float:
    """The classic ``evaluate`` conversion for non-float kernel results."""
    if isinstance(value, (bool, int, float)):
        return float(value)
    raise TypeError(f"priority function returned a non-numeric value: {value!r}")


# The whole simulation loop is generated so the kernel's argument
# expressions ({parts}) inline at both evaluation sites with no call
# frames around them.  Metric counters are unconditional; the warmup
# boundary is handled by splitting the trace into two segments and
# snapshotting the counters between them, so the hot loop carries no
# per-request ``counted`` checks.  Structure and order mirror
# ``CacheSimulator.run`` + ``PriorityFunctionCache`` exactly:
# refresh check, lookup, hit re-push / miss, bypass, evict-until-fits
# (lazy-deletion heap peek + history record), admit, push.
_LOOP_TEMPLATE = """\
def _fused_loop(timestamps, keys, sizes, warmup,
                capacity, refresh_interval, refresh_since):
    heappush = __g_heappush
    heappop = __g_heappop
    counts_update = __g_counts_update
    ages_update = __g_ages_update
    sizes_update = __g_sizes_update
    refresh_consts = __g_refresh_consts
    EvictedRecord = __g_EvictedRecord
    hist_max = __g_hist_max
    _hrecords = __g_hrecords
    hpop_oldest = _hrecords.popitem
    _hget = __g_hget
    _consts = __g_consts
    _kernel = __g_kernel
    _convert = __g_convert
    _wrapped = __g_wrapped
    _capture = _capture_row
{method_aliases}\
    store = {{}}
    store_get = store.get
    heap = []
    used = 0
    evictions = 0
    generation = 0
    last_push_now = None
    m_requests = m_bytes_requested = m_hits = m_misses = 0
    m_bytes_missed = m_bypassed = m_admissions = 0
    base = None
    n = len(timestamps)
    w = warmup if warmup > 0 else 0
    if w > n:
        w = n
    for seg_ts, seg_keys, seg_sizes in (
        (timestamps[:w], keys[:w], sizes[:w]),
        (timestamps[w:], keys[w:], sizes[w:]),
    ):
        for now, key, size in zip(seg_ts, seg_keys, seg_sizes):
            m_requests += 1
            m_bytes_requested += size
            refresh_since += 1
            if refresh_since >= refresh_interval:
                refresh_since = 0
                entries = store.values()
                counts_update([entry[0] for entry in entries])
                ages_update(
                    [(now - entry[1]) if now > entry[1] else 0 for entry in entries]
                )
                sizes_update([entry[3] for entry in entries])
                refresh_consts()
            entry = store_get(key)
            if entry is not None:
                entry[0] += 1
                entry[1] = now
                last_push_now = now
                generation += 1
                entry[4] = generation
                try:
                    value = _kernel({parts})
                    score = value if type(value) is float else _convert(value)
                except Exception:
                    _wrapped(*_capture(now, key, entry))
                    raise
                entry[5] = score
                heappush(heap, (score, generation, key))
                m_hits += 1
                continue
            m_misses += 1
            m_bytes_missed += size
            if size > capacity:
                m_bypassed += 1
                continue
            while used + size > capacity:
                victim_entry = None
                while heap:
                    _score, gen, victim = heap[0]
                    candidate = store_get(victim)
                    if candidate is not None and candidate[4] == gen:
                        victim_entry = candidate
                        break
                    heappop(heap)
                if victim_entry is None:
                    raise RuntimeError(__g_invalid_victim_msg)
                del store[victim]
                used -= victim_entry[3]
                evictions += 1
                if victim in _hrecords:
                    del _hrecords[victim]
                last = victim_entry[1]
                _hrecords[victim] = EvictedRecord(
                    victim,
                    now,
                    victim_entry[0],
                    (now - last) if now > last else 0,
                    victim_entry[3],
                )
                while len(_hrecords) > hist_max:
                    hpop_oldest(last=False)
            entry = [1, now, now, size, 0, 0.0]
            store[key] = entry
            used += size
            last_push_now = now
            generation += 1
            entry[4] = generation
            try:
                value = _kernel({parts})
                score = value if type(value) is float else _convert(value)
            except Exception:
                _wrapped(*_capture(now, key, entry))
                raise
            entry[5] = score
            heappush(heap, (score, generation, key))
            m_admissions += 1
        if base is None:
            base = (m_requests, m_bytes_requested, m_hits, m_misses,
                    m_bytes_missed, m_bypassed, m_admissions)
    totals = (m_requests, m_bytes_requested, m_hits, m_misses,
              m_bytes_missed, m_bypassed, m_admissions)
    return (store, heap, used, evictions, generation, refresh_since,
            last_push_now, base, totals)
"""


def _build_fused_loop(
    vp: VectorizedProgram, policy: PriorityFunctionCache
) -> Optional[Tuple[Callable, Callable[[], None]]]:
    """Compile the specialised simulation loop for ``vp`` against ``policy``.

    Returns ``(loop, refresh_consts)`` or ``None`` when any kernel column
    falls outside the Table-1 vocabulary -- then the classic loop must run
    so unknown attributes and methods fail with their usual errors.

    Each kernel column becomes a Python expression evaluated inline at the
    push sites: store-entry slot reads for ``obj_info`` attributes, the
    loop variables for ``now``/``obj_id``, inlined :class:`EvictionHistory`
    method bodies over the live records dict (same reads, no method-call
    frames), a per-refresh constant table for aggregate methods with
    literal arguments, and bound method calls for the rest.  A
    ``_capture_row`` helper materialising the same row feeds the classic
    kernel *wrapper* on the exception path, so a failing evaluation raises
    exactly the classic exception (division by zero normalisation etc.).
    """
    aggregates = {"counts": policy._counts, "ages": policy._ages, "sizes": policy._sizes}
    history = policy._history
    parts: List[str] = []
    namespace: Dict[str, Any] = {
        # record() mutates these containers in place and never rebinds them,
        # so capturing them once is safe for the whole run.
        "__g_hrecords": history._records,
        "__g_hget": history._records.get,
    }
    consts: List[float] = []
    const_calls: List[Tuple[Callable, Tuple[Any, ...]]] = []
    method_aliases: List[str] = []

    def argument_source(kind: str, value: Any) -> Optional[str]:
        if kind == "lit":
            return repr(value)
        if value == "now":
            return "now"
        if value == "obj_id":
            return "key"
        return None

    # EvictionHistory method bodies as expressions; {0} is the method
    # argument, {r} a per-column temp bound by the walrus in the condition.
    # Records are always truthy, so ``record if record else 0`` is an
    # is-None test.  ``time_since_eviction`` uses the push-time ``now``
    # directly -- the classic loop's set_now(now) happens at the same
    # instant, so ``history._now == now`` whenever it is read.
    history_exprs = {
        "contains": "({0} in _hrecords)",
        "count_of": "({r}.access_count if ({r} := _hget({0})) else 0)",
        "age_at_eviction": "({r}.age_at_eviction if ({r} := _hget({0})) else 0)",
        "size_of": "({r}.size if ({r} := _hget({0})) else 0)",
        "time_since_eviction": (
            "(0 if ({r} := _hget({0})) is None"
            " else ({d} if ({d} := now - {r}.evicted_at) > 0 else 0))"
        ),
        "length": "len(_hrecords)",
    }

    for index, spec in enumerate(vp.columns):
        if spec.kind == "scalar":
            if spec.param == "now":
                parts.append("now")
            elif spec.param == "obj_id":
                parts.append("key")
            else:
                return None
        elif spec.kind == "attr":
            if spec.param != "obj_info" or spec.attr not in _ATTR_SLOT:
                return None
            parts.append(f"entry[{_ATTR_SLOT[spec.attr]}]")
        else:  # method column
            if spec.param == "history":
                arity = _HISTORY_ARITY.get(spec.attr)
            elif spec.param in aggregates:
                arity = _AGG_ARITY.get(spec.attr)
            else:
                return None
            if arity is None or len(spec.args) != arity:
                return None
            sources = []
            for kind, value in spec.args:
                source = argument_source(kind, value)
                if source is None:
                    return None
                sources.append(source)
            if spec.param == "history":
                template = history_exprs[spec.attr]
                parts.append(
                    template.format(*sources, r=f"_r{index}", d=f"_d{index}")
                )
                continue
            receiver = aggregates[spec.param]
            if all(kind == "lit" for kind, _value in spec.args):
                slot = len(const_calls)
                const_calls.append(
                    (getattr(receiver, spec.attr), tuple(v for _k, v in spec.args))
                )
                consts.append(0.0)
                parts.append(f"_consts[{slot}]")
                continue
            bound = f"_method{index}"
            namespace[f"__g{bound}"] = getattr(receiver, spec.attr)
            method_aliases.append(f"    {bound} = __g{bound}\n")
            parts.append(f"{bound}({', '.join(sources)})")

    trailing = "," if len(parts) == 1 else ""
    joined = ", ".join(parts)

    def refresh_consts() -> None:
        for slot, (method, args) in enumerate(const_calls):
            consts[slot] = method(*args)

    namespace["__g_heappush"] = heapq.heappush
    namespace["__g_heappop"] = heapq.heappop
    namespace["__g_counts_update"] = policy._counts.update
    namespace["__g_ages_update"] = policy._ages.update
    namespace["__g_sizes_update"] = policy._sizes.update
    namespace["__g_refresh_consts"] = refresh_consts
    namespace["__g_EvictedRecord"] = EvictedRecord
    namespace["__g_hist_max"] = history.max_entries
    namespace["__g_consts"] = consts
    namespace["__g_kernel"] = vp.kernel._fn
    namespace["__g_convert"] = _convert_score
    namespace["__g_wrapped"] = vp.kernel
    namespace["__g_invalid_victim_msg"] = (
        f"{policy.policy_name}: choose_victim returned invalid key None"
    )
    source = (
        "def _capture_row(now, key, entry):\n"
        f"    return ({joined}{trailing})\n"
        + _LOOP_TEMPLATE.format(parts=joined, method_aliases="".join(method_aliases))
    )
    exec(_compiled_loop(source), namespace)  # noqa: S102 - fixed vocabulary
    return namespace["_fused_loop"], refresh_consts


#: Compiling the ~150-line generated loop costs more than a millisecond --
#: comparable to simulating a small trace -- so code objects are cached by
#: source text (identical programs share one entry; the namespace binding
#: per run stays cheap).
_LOOP_CODE_CACHE: "OrderedDict[str, Any]" = OrderedDict()
_LOOP_CODE_CACHE_MAX = 256


def _compiled_loop(source: str):
    code = _LOOP_CODE_CACHE.get(source)
    if code is None:
        code = compile(source, "<columnar-fused>", "exec")
        _LOOP_CODE_CACHE[source] = code
        while len(_LOOP_CODE_CACHE) > _LOOP_CODE_CACHE_MAX:
            _LOOP_CODE_CACHE.popitem(last=False)
    else:
        _LOOP_CODE_CACHE.move_to_end(source)
    return code


def _policy_is_fresh(policy: PriorityFunctionCache) -> bool:
    return not (
        policy._objects
        or policy._used
        or policy.eviction_count
        or policy.admission_count
        or policy.priority_evaluations
        or policy._generation
        or policy._heap
        or policy._history.length()
        or policy._requests_since_refresh != policy.refresh_interval
    )


def fused_cache_run(
    simulator, policy, trace, warmup: int = 0
) -> Optional[SimulationResult]:
    """Run ``policy`` over ``trace`` on the fused columnar path, or ``None``.

    ``None`` means "not eligible, use the classic loop" -- never an error.
    """
    if simulator.check_invariants_every:
        return None
    if type(policy) is not PriorityFunctionCache:
        return None
    if policy._eviction_listeners:
        return None
    priority = policy._priority
    if not isinstance(priority, DslPriorityFunction) or priority.backend != "vectorized":
        return None
    vp = priority._runner
    if not isinstance(vp, VectorizedProgram):
        return None
    if not _policy_is_fresh(policy):
        return None
    built = _build_fused_loop(vp, policy)
    if built is None:
        return None
    columns_of = getattr(trace, "columns", None)
    columns = columns_of() if callable(columns_of) else None
    if columns is None:
        return None
    loop, refresh_consts = built
    refresh_consts()

    (store, heap, used, evictions, generation, refresh_since,
     last_push_now, base, totals) = loop(
        columns[0].tolist(),
        columns[1].tolist(),
        columns[2].tolist(),
        warmup,
        policy.capacity,
        policy.refresh_interval,
        policy._requests_since_refresh,
    )

    history = policy._history
    if last_push_now is not None:
        history._now = last_push_now

    result = SimulationResult(
        policy=policy.policy_name,
        trace=trace.name,
        cache_size=policy.capacity,
        requests=totals[0] - base[0],
        bytes_requested=totals[1] - base[1],
        hits=totals[2] - base[2],
        misses=totals[3] - base[3],
        bytes_missed=totals[4] - base[4],
        bypassed=totals[5] - base[5],
        admissions=totals[6] - base[6],
        evictions=evictions,
    )

    # Write the fused state back so the policy object is indistinguishable
    # from one that ran the classic loop (tests poke at all of these).
    objects: Dict[int, CachedObject] = {}
    for key, entry in store.items():
        objects[key] = CachedObject(
            key=key,
            size=entry[_SIZE],
            insert_time=entry[_INSERTED],
            last_access_time=entry[_LAST],
            access_count=entry[_COUNT],
            extra={"ps_gen": entry[_GEN], "ps_score": entry[_SCORE]},
        )
    policy._objects = objects
    policy._used = used
    policy.eviction_count = evictions
    policy.admission_count = totals[6]
    # The classic loop scores exactly once per generation bump.
    policy.priority_evaluations = generation
    policy._generation = generation
    policy._requests_since_refresh = refresh_since
    policy._heap = heap
    return result
