"""Cache simulation substrate (the reproduction's libCacheSim stand-in).

The package provides:

* :mod:`repro.cache.request` -- request/trace data model,
* :mod:`repro.cache.simulator` -- the event-driven simulation loop,
* :mod:`repro.cache.metrics` -- result records (miss ratio, byte miss ratio),
* :mod:`repro.cache.features` -- the Table-1 feature view handed to
  synthesized ``priority()`` functions,
* :mod:`repro.cache.priority_cache` -- the PolicySmith Template cache: a
  priority-queue cache whose priority function is a DSL program,
* :mod:`repro.cache.policies` -- the baseline eviction algorithms used in
  Figure 2 plus the shipped evolved heuristics (A-D, W-Z),
* :mod:`repro.cache.oracle` -- the B-Oracle / PS-Oracle selectors.
"""

from repro.cache.request import Request, Trace
from repro.cache.metrics import SimulationResult
from repro.cache.simulator import CacheSimulator, simulate
from repro.cache.priority_cache import PriorityFunctionCache
from repro.cache.features import EvictionHistory, FeatureAggregates, ObjectInfoView

__all__ = [
    "Request",
    "Trace",
    "SimulationResult",
    "CacheSimulator",
    "simulate",
    "PriorityFunctionCache",
    "EvictionHistory",
    "FeatureAggregates",
    "ObjectInfoView",
]
