"""Table 2: fraction of corpus traces where each synthesized heuristic
outperforms *all* fourteen baselines.

The paper reports, e.g., Heuristic A winning on 48 % of CloudPhysics traces
and Heuristic X on 64 % of MSR traces.  The exact numbers depend on the
traces; the shape to reproduce is that each heuristic wins on a substantial
fraction of its corpus (well above 0) without winning everywhere.

Run via the unified CLI::

    python -m repro run table2
    python -m repro run table2 --set dataset=msr --set traces=14
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional

from repro.experiments.corpus import CorpusEvaluation, evaluate_corpus
from repro.experiments.registry import ExperimentDef, register_experiment


@dataclass
class Table2Entry:
    """One cell of Table 2."""

    dataset: str
    heuristic: str
    wins: int
    traces: int

    @property
    def win_fraction(self) -> float:
        return self.wins / self.traces if self.traces else 0.0


def table2_from_evaluation(
    evaluation: CorpusEvaluation, tolerance: float = 1e-9
) -> List[Table2Entry]:
    """Count, per heuristic, traces where it beats or matches every baseline.

    "Outperform" is interpreted as a strictly lower-or-equal miss ratio than
    the best baseline on that trace (ties count as wins, matching the paper's
    "match or outperform" phrasing in §4.2.3).
    """
    entries: List[Table2Entry] = []
    traces = evaluation.traces()
    for heuristic in evaluation.heuristic_names:
        wins = 0
        for trace in traces:
            per_policy = evaluation.results[trace]
            heuristic_miss = per_policy[heuristic].miss_ratio
            best_baseline_miss = min(
                per_policy[name].miss_ratio for name in evaluation.baseline_names
            )
            if heuristic_miss <= best_baseline_miss + tolerance:
                wins += 1
        entries.append(
            Table2Entry(
                dataset=evaluation.dataset,
                heuristic=heuristic,
                wins=wins,
                traces=len(traces),
            )
        )
    return entries


def run_table2(
    dataset: str = "cloudphysics",
    trace_count: Optional[int] = None,
    num_requests: Optional[int] = None,
    evaluation: Optional[CorpusEvaluation] = None,
) -> List[Table2Entry]:
    """Build Table 2 for ``dataset`` (reusing ``evaluation`` if provided)."""
    if evaluation is None:
        evaluation = evaluate_corpus(
            dataset, trace_count=trace_count, num_requests=num_requests
        )
    return table2_from_evaluation(evaluation)


def format_table2(entries: List[Table2Entry]) -> str:
    lines = [
        "Table 2: % of traces where the synthesized heuristic beats all baselines",
        f"{'dataset':<14} {'heuristic':<14} {'wins':>6} {'traces':>7} {'share':>8}",
    ]
    for entry in entries:
        lines.append(
            f"{entry.dataset:<14} {entry.heuristic:<14} {entry.wins:>6} "
            f"{entry.traces:>7} {entry.win_fraction * 100:7.1f}%"
        )
    return "\n".join(lines)


# -- experiment registration --------------------------------------------------------


def table2_payload(entries: List[Table2Entry]) -> dict:
    return {"kind": "table2", "entries": [asdict(entry) for entry in entries]}


def render_table2(payload: dict) -> str:
    """Pure reducer: stored payload -> the printed Table 2."""
    return format_table2([Table2Entry(**entry) for entry in payload["entries"]])


def _run_table2_experiment(
    dataset: str, traces: Optional[int], requests: Optional[int]
) -> dict:
    datasets = ["cloudphysics", "msr"] if dataset == "both" else [dataset]
    all_entries: List[Table2Entry] = []
    for name in datasets:
        all_entries.extend(
            run_table2(name, trace_count=traces, num_requests=requests)
        )
    return table2_payload(all_entries)


register_experiment(
    ExperimentDef(
        name="table2",
        description="Table 2: share of traces where each heuristic beats all baselines",
        runner=_run_table2_experiment,
        renderer=render_table2,
        params={"dataset": "both", "traces": None, "requests": None},
    )
)


if __name__ == "__main__":  # pragma: no cover - migration stub
    raise SystemExit(
        "this entry point moved to the unified CLI: "
        "python -m repro run table2"
    )
