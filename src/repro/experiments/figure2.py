"""Figure 2: miss-ratio improvement over FIFO across a whole corpus.

For every policy (the 14 baselines, the evolved heuristics for the dataset,
and the two oracles) the paper plots the distribution of per-trace
improvements over FIFO, with the mean marked, policies ordered left to right
by increasing average.  This module produces exactly those series as data
and prints them as a sorted text table (one row per policy: mean, median,
min, max improvement).

Run via the unified CLI::

    python -m repro run figure2
    python -m repro run figure2 --set dataset=msr --set traces=20
"""

from __future__ import annotations

import json
import sys
from dataclasses import asdict, dataclass, field
from typing import List, Optional

from repro.experiments.registry import ExperimentDef, register_experiment

from repro.cache.oracle import baseline_oracle, policysmith_oracle
from repro.experiments.corpus import CorpusEvaluation, evaluate_corpus


@dataclass
class Figure2Row:
    """One policy's series in Figure 2."""

    policy: str
    kind: str  # "baseline" | "heuristic" | "oracle"
    mean_improvement: float
    median_improvement: float
    min_improvement: float
    max_improvement: float
    improvements: List[float] = field(default_factory=list)


@dataclass
class Figure2Result:
    """The full figure for one dataset."""

    dataset: str
    traces: List[str]
    rows: List[Figure2Row]

    def row(self, policy: str) -> Figure2Row:
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(policy)

    def ordered_rows(self) -> List[Figure2Row]:
        """Rows ordered left-to-right by increasing mean, as in the figure."""
        return sorted(self.rows, key=lambda r: r.mean_improvement)

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "traces": list(self.traces),
            "rows": [asdict(row) for row in self.ordered_rows()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Figure2Result":
        return cls(
            dataset=data["dataset"],
            traces=list(data["traces"]),
            rows=[Figure2Row(**row) for row in data["rows"]],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def _series_row(policy: str, kind: str, improvements: List[float]) -> Figure2Row:
    ordered = sorted(improvements)
    n = len(ordered)
    median = ordered[n // 2] if n % 2 else (ordered[n // 2 - 1] + ordered[n // 2]) / 2
    return Figure2Row(
        policy=policy,
        kind=kind,
        mean_improvement=sum(ordered) / n if n else 0.0,
        median_improvement=median if n else 0.0,
        min_improvement=ordered[0] if n else 0.0,
        max_improvement=ordered[-1] if n else 0.0,
        improvements=list(improvements),
    )


def figure2_from_evaluation(evaluation: CorpusEvaluation) -> Figure2Result:
    """Post-process a corpus evaluation into the Figure 2 series."""
    rows: List[Figure2Row] = []
    for name in evaluation.baseline_names:
        rows.append(_series_row(name, "baseline", evaluation.improvements_for(name)))
    for name in evaluation.heuristic_names:
        rows.append(_series_row(name, "heuristic", evaluation.improvements_for(name)))

    b_oracle = baseline_oracle(evaluation.baseline_names)
    ps_oracle = policysmith_oracle(evaluation.baseline_names, evaluation.heuristic_names)
    b_selections = b_oracle.select(evaluation.results)
    ps_selections = ps_oracle.select(evaluation.results)
    rows.append(
        _series_row(
            "B-Oracle", "oracle", [s.improvement_over_fifo for s in b_selections]
        )
    )
    rows.append(
        _series_row(
            "PS-Oracle", "oracle", [s.improvement_over_fifo for s in ps_selections]
        )
    )
    return Figure2Result(
        dataset=evaluation.dataset, traces=evaluation.traces(), rows=rows
    )


def run_figure2(
    dataset: str = "cloudphysics",
    trace_count: Optional[int] = None,
    num_requests: Optional[int] = None,
    cache_fraction: float = 0.10,
    progress: bool = False,
) -> Figure2Result:
    """Evaluate the corpus and build the Figure 2 series for ``dataset``."""
    evaluation = evaluate_corpus(
        dataset,
        trace_count=trace_count,
        num_requests=num_requests,
        cache_fraction=cache_fraction,
        # stderr, so report output on stdout stays machine-comparable.
        progress=(
            (lambda name: print(f"  simulating {name} ...", file=sys.stderr))
            if progress
            else None
        ),
    )
    return figure2_from_evaluation(evaluation)


def format_figure2(result: Figure2Result, top_baselines: Optional[int] = None) -> str:
    """Text rendering of the figure (policies ordered by increasing mean)."""
    rows = result.ordered_rows()
    if top_baselines is not None:
        baselines = [r for r in rows if r.kind == "baseline"]
        keep = {r.policy for r in baselines[-top_baselines:]}
        keep.add("FIFO")
        rows = [r for r in rows if r.kind != "baseline" or r.policy in keep]
    lines = [
        f"Figure 2 ({result.dataset}): miss-ratio improvement over FIFO, "
        f"{len(result.traces)} traces",
        f"{'policy':<16} {'kind':<10} {'mean':>8} {'median':>8} {'min':>8} {'max':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.policy:<16} {row.kind:<10} "
            f"{row.mean_improvement * 100:7.2f}% {row.median_improvement * 100:7.2f}% "
            f"{row.min_improvement * 100:7.2f}% {row.max_improvement * 100:7.2f}%"
        )
    return "\n".join(lines)


# -- experiment registration --------------------------------------------------------


def figure2_payload(result: Figure2Result, top_baselines: Optional[int] = 5) -> dict:
    """The artifact payload: the full series plus the rendering options."""
    payload = result.to_dict()
    payload["kind"] = "figure2"
    payload["top_baselines"] = top_baselines
    return payload


def render_figure2(payload: dict) -> str:
    """Pure reducer: stored payload -> the printed Figure 2 table."""
    return format_figure2(
        Figure2Result.from_dict(payload), top_baselines=payload.get("top_baselines")
    )


def _run_figure2_experiment(
    dataset: str,
    traces: Optional[int],
    requests: Optional[int],
    cache_fraction: float,
    top_baselines: Optional[int],
    progress: bool = False,
) -> dict:
    result = run_figure2(
        dataset=dataset,
        trace_count=traces,
        num_requests=requests,
        cache_fraction=cache_fraction,
        progress=progress,
    )
    return figure2_payload(result, top_baselines=top_baselines)


register_experiment(
    ExperimentDef(
        name="figure2",
        description="Figure 2: miss-ratio improvement over FIFO across a corpus",
        runner=_run_figure2_experiment,
        renderer=render_figure2,
        params={
            "dataset": "cloudphysics",
            "traces": None,
            "requests": None,
            "cache_fraction": 0.10,
            "top_baselines": 5,
        },
        accepts_progress=True,
    )
)


if __name__ == "__main__":  # pragma: no cover - migration stub
    raise SystemExit(
        "this entry point moved to the unified CLI: "
        "python -m repro run figure2 --set dataset=msr"
    )
