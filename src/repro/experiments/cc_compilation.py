"""§5.0.3 compilation rates: how many kernel candidates pass the verifier.

The paper generates 100 congestion-control candidates, compiles them to
eBPF, and reports:

* 63 % passed the verifier on the first try,
* an additional 19 % compiled after the Generator was shown the stderr,
* the most common causes were floating-point arithmetic and missing
  division-by-zero checks,
* versus a 92 % first-pass rate for the (much less constrained) caching
  Template.

This module reproduces the whole table: it generates N candidates for each
Template, runs them through the corresponding Checker with one
feedback/repair round, and aggregates pass rates and failure causes.

Run via the unified CLI::

    python -m repro run cc-compilation --set candidates=100
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.cache.search import caching_archetypes, caching_template
from repro.cc.kernel_constraints import KernelConstraintChecker
from repro.cc.template import cc_grammar_config, cc_template, kernel_llm_config
from repro.core.checker import Checker, StructuralChecker
from repro.core.generator import LLMGenerator
from repro.core.template import Template
from repro.dsl.codegen import to_source
from repro.experiments.registry import ExperimentDef, register_experiment
from repro.llm.mock import SyntheticLLMClient, SyntheticLLMConfig


@dataclass
class CompilationReport:
    """Pass/repair statistics for one Template."""

    template: str
    candidates: int
    first_pass: int
    repaired: int
    failed: int
    failure_codes: Dict[str, int] = field(default_factory=dict)

    @property
    def first_pass_rate(self) -> float:
        return self.first_pass / self.candidates if self.candidates else 0.0

    @property
    def repaired_rate(self) -> float:
        return self.repaired / self.candidates if self.candidates else 0.0

    @property
    def total_pass_rate(self) -> float:
        return self.first_pass_rate + self.repaired_rate


def _measure(
    template: Template,
    checker: Checker,
    client: SyntheticLLMClient,
    num_candidates: int,
    repair: bool = True,
) -> CompilationReport:
    generator = LLMGenerator(template, client)
    parents = [(to_source(p), 0.0) for p in template.seed_programs]
    report = CompilationReport(
        template=template.name,
        candidates=0,
        first_pass=0,
        repaired=0,
        failed=0,
    )
    batch = 25
    remaining = num_candidates
    while remaining > 0:
        sources = generator.generate(parents, min(batch, remaining))
        if not sources:
            break
        for source in sources:
            report.candidates += 1
            result = checker.check(source)
            if result.ok:
                report.first_pass += 1
                continue
            for issue in result.issues:
                report.failure_codes[issue.code] = (
                    report.failure_codes.get(issue.code, 0) + 1
                )
            if repair:
                repaired_source = generator.repair(source, result.feedback)
                if repaired_source is not None and checker.check(repaired_source).ok:
                    report.repaired += 1
                    continue
            report.failed += 1
        remaining -= len(sources)
    return report


def run_cc_compilation(
    num_candidates: int = 100,
    seed: int = 11,
    include_caching: bool = True,
    repair: bool = True,
    llm_config: Optional[SyntheticLLMConfig] = None,
) -> List[CompilationReport]:
    """Measure verifier pass rates for the kernel Template (and caching, for
    the 92 % comparison row)."""
    reports: List[CompilationReport] = []

    kernel_template = cc_template()
    kernel_client = SyntheticLLMClient(
        kernel_template.spec,
        config=llm_config or kernel_llm_config(),
        seed=seed,
        grammar=cc_grammar_config(),
    )
    reports.append(
        _measure(
            kernel_template,
            KernelConstraintChecker(kernel_template),
            kernel_client,
            num_candidates,
            repair=repair,
        )
    )

    if include_caching:
        cache_template = caching_template()
        cache_client = SyntheticLLMClient(
            cache_template.spec,
            config=SyntheticLLMConfig(archetypes=caching_archetypes()),
            seed=seed,
        )
        reports.append(
            _measure(
                cache_template,
                StructuralChecker(cache_template),
                cache_client,
                num_candidates,
                repair=repair,
            )
        )
    return reports


def format_compilation(reports: List[CompilationReport]) -> str:
    lines = [
        "Checker pass rates (one repair round with checker feedback)",
        f"{'template':<16} {'n':>5} {'first pass':>11} {'after repair':>13} {'failed':>8}",
    ]
    for report in reports:
        lines.append(
            f"{report.template:<16} {report.candidates:>5} "
            f"{report.first_pass_rate * 100:10.1f}% "
            f"{'+' + format(report.repaired_rate * 100, '.1f') + '%':>13} "
            f"{report.failed:>8}"
        )
    for report in reports:
        if report.failure_codes:
            causes = ", ".join(
                f"{code}: {count}"
                for code, count in sorted(
                    report.failure_codes.items(), key=lambda kv: -kv[1]
                )
            )
            lines.append(f"  {report.template} failure causes: {causes}")
    return "\n".join(lines)


# -- experiment registration --------------------------------------------------------


def compilation_payload(reports: List[CompilationReport]) -> dict:
    return {
        "kind": "cc-compilation",
        "reports": [asdict(report) for report in reports],
    }


def render_compilation(payload: dict) -> str:
    """Pure reducer: stored payload -> the printed pass-rate table."""
    return format_compilation(
        [CompilationReport(**raw) for raw in payload["reports"]]
    )


def _run_cc_compilation_experiment(
    candidates: int, seed: int, caching: bool, repair: bool
) -> dict:
    reports = run_cc_compilation(
        num_candidates=candidates,
        seed=seed,
        include_caching=caching,
        repair=repair,
    )
    return compilation_payload(reports)


register_experiment(
    ExperimentDef(
        name="cc-compilation",
        description="§5.0.3: verifier pass rates (kernel vs caching templates)",
        runner=_run_cc_compilation_experiment,
        renderer=render_compilation,
        params={"candidates": 100, "seed": 11, "caching": True, "repair": True},
    )
)


if __name__ == "__main__":  # pragma: no cover - migration stub
    raise SystemExit(
        "this entry point moved to the unified CLI: "
        "python -m repro run cc-compilation --set candidates=100"
    )
