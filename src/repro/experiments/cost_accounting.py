"""§4.2.6 computational cost of the search.

The paper reports, for the search that produced Heuristic A: 5.5 CPU-hours
of candidate evaluation, ~800k input tokens and ~300k output tokens with
GPT-4o-mini, and roughly $7 total for the eight runs of §4.

This module runs one or more (scaled-down) searches and produces the same
accounting row: evaluation CPU time, prompt/completion tokens, and the cost
those tokens would incur at GPT-4o-mini prices.

Run as a script::

    python -m repro.experiments.cost_accounting --rounds 4 --candidates 10
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from repro.core.cost import GPT_4O_MINI_PRICING, SearchCostReport
from repro.core.domain import build_search
from repro.traces import cloudphysics_trace


def run_cost_accounting(
    trace_indices: Optional[List[int]] = None,
    rounds: int = 4,
    candidates_per_round: int = 10,
    num_requests: int = 3000,
    seed: int = 0,
) -> SearchCostReport:
    """Run one search per trace index and aggregate the cost report."""
    indices = trace_indices if trace_indices is not None else [89]
    report = SearchCostReport(cost_model=GPT_4O_MINI_PRICING)
    for index in indices:
        trace = cloudphysics_trace(index, num_requests=num_requests)
        setup = build_search(
            "caching",
            rounds=rounds,
            candidates_per_round=candidates_per_round,
            seed=seed,
            trace=trace,
        )
        start = time.process_time()
        result = setup.search.run()
        cpu_seconds = time.process_time() - start
        report.add_run(
            name=f"cloudphysics/{trace.name}",
            prompt_tokens=result.prompt_tokens,
            completion_tokens=result.completion_tokens,
            evaluation_cpu_seconds=cpu_seconds,
        )
    return report


def format_cost_report(report: SearchCostReport) -> str:
    lines = [
        "Search cost accounting (GPT-4o-mini price sheet: "
        f"${report.cost_model.usd_per_million_input}/M input, "
        f"${report.cost_model.usd_per_million_output}/M output)",
        f"{'run':<24} {'prompt tok':>12} {'completion tok':>15} {'cpu s':>8} {'cost $':>9}",
    ]
    for run in report.per_run:
        lines.append(
            f"{run['name']:<24} {run['prompt_tokens']:>12,} "
            f"{run['completion_tokens']:>15,} {run['evaluation_cpu_seconds']:>8.1f} "
            f"{run['cost_usd']:>9.4f}"
        )
    lines.append(
        f"{'TOTAL':<24} {report.prompt_tokens:>12,} {report.completion_tokens:>15,} "
        f"{report.evaluation_cpu_seconds:>8.1f} {report.total_cost_usd:>9.4f}"
    )
    lines.append(
        f"evaluation CPU-hours: {report.evaluation_cpu_hours:.3f}"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, nargs="*", default=[89])
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--candidates", type=int, default=10)
    parser.add_argument("--requests", type=int, default=3000)
    args = parser.parse_args(argv)

    report = run_cost_accounting(
        trace_indices=args.traces,
        rounds=args.rounds,
        candidates_per_round=args.candidates,
        num_requests=args.requests,
    )
    print(format_cost_report(report))


if __name__ == "__main__":
    main()
