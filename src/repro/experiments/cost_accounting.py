"""§4.2.6 computational cost of the search.

The paper reports, for the search that produced Heuristic A: 5.5 CPU-hours
of candidate evaluation, ~800k input tokens and ~300k output tokens with
GPT-4o-mini, and roughly $7 total for the eight runs of §4.

This module runs one or more (scaled-down) searches and produces the same
accounting row: evaluation CPU time, prompt/completion tokens, and the cost
those tokens would incur at GPT-4o-mini prices.

Run via the unified CLI::

    python -m repro run cost-accounting --set rounds=4 --set candidates=10
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.core.cost import GPT_4O_MINI_PRICING, SearchCostReport
from repro.core.domain import build_search
from repro.experiments.registry import ExperimentDef, register_experiment
from repro.workloads import build_trace


def run_cost_accounting(
    trace_indices: Optional[List[int]] = None,
    rounds: int = 4,
    candidates_per_round: int = 10,
    num_requests: int = 3000,
    seed: int = 0,
) -> SearchCostReport:
    """Run one search per trace index and aggregate the cost report."""
    indices = trace_indices if trace_indices is not None else [89]
    report = SearchCostReport(cost_model=GPT_4O_MINI_PRICING)
    for index in indices:
        trace = build_trace("caching/cloudphysics", index=index, num_requests=num_requests)
        setup = build_search(
            "caching",
            rounds=rounds,
            candidates_per_round=candidates_per_round,
            seed=seed,
            trace=trace,
        )
        start = time.process_time()
        result = setup.search.run()
        cpu_seconds = time.process_time() - start
        report.add_run(
            name=f"cloudphysics/{trace.name}",
            prompt_tokens=result.prompt_tokens,
            completion_tokens=result.completion_tokens,
            evaluation_cpu_seconds=cpu_seconds,
        )
    return report


def cost_report_payload(report: SearchCostReport) -> dict:
    return {
        "kind": "cost-accounting",
        "cost_model": {
            "model": report.cost_model.model,
            "usd_per_million_input": report.cost_model.usd_per_million_input,
            "usd_per_million_output": report.cost_model.usd_per_million_output,
        },
        "per_run": [dict(run) for run in report.per_run],
        "prompt_tokens": report.prompt_tokens,
        "completion_tokens": report.completion_tokens,
        "evaluation_cpu_seconds": report.evaluation_cpu_seconds,
        "total_cost_usd": report.total_cost_usd,
        "evaluation_cpu_hours": report.evaluation_cpu_hours,
    }


def render_cost_report(payload: dict) -> str:
    """Pure reducer: stored payload -> the printed accounting table."""
    model = payload["cost_model"]
    lines = [
        "Search cost accounting (GPT-4o-mini price sheet: "
        f"${model['usd_per_million_input']}/M input, "
        f"${model['usd_per_million_output']}/M output)",
        f"{'run':<24} {'prompt tok':>12} {'completion tok':>15} {'cpu s':>8} {'cost $':>9}",
    ]
    for run in payload["per_run"]:
        lines.append(
            f"{run['name']:<24} {run['prompt_tokens']:>12,} "
            f"{run['completion_tokens']:>15,} {run['evaluation_cpu_seconds']:>8.1f} "
            f"{run['cost_usd']:>9.4f}"
        )
    lines.append(
        f"{'TOTAL':<24} {payload['prompt_tokens']:>12,} "
        f"{payload['completion_tokens']:>15,} "
        f"{payload['evaluation_cpu_seconds']:>8.1f} {payload['total_cost_usd']:>9.4f}"
    )
    lines.append(
        f"evaluation CPU-hours: {payload['evaluation_cpu_hours']:.3f}"
    )
    return "\n".join(lines)


def format_cost_report(report: SearchCostReport) -> str:
    return render_cost_report(cost_report_payload(report))


# -- experiment registration --------------------------------------------------------


def _run_cost_accounting_experiment(
    traces: List[int], rounds: int, candidates: int, requests: int, seed: int
) -> dict:
    # Accept a bare index too: `--set traces=4` is the natural migration from
    # the old `--traces 4` CLI and from every other experiment's scalar knobs.
    if isinstance(traces, int):
        traces = [traces]
    report = run_cost_accounting(
        trace_indices=list(traces),
        rounds=rounds,
        candidates_per_round=candidates,
        num_requests=requests,
        seed=seed,
    )
    return cost_report_payload(report)


register_experiment(
    ExperimentDef(
        name="cost-accounting",
        description="§4.2.6: CPU time, tokens and dollar cost of search runs",
        runner=_run_cost_accounting_experiment,
        renderer=render_cost_report,
        params={
            "traces": [89],
            "rounds": 4,
            "candidates": 10,
            "requests": 3000,
            "seed": 0,
        },
    )
)


if __name__ == "__main__":  # pragma: no cover - migration stub
    raise SystemExit(
        "this entry point moved to the unified CLI: "
        "python -m repro run cost-accounting --set rounds=4"
    )
