"""Shared corpus evaluation used by Figure 2 and Table 2.

Running every policy (14 baselines + the evolved heuristics) over every
trace of a corpus is the expensive part of both experiments, so it is done
once here and the figure/table modules post-process the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.cache.metrics import SimulationResult
from repro.cache.policies import BASELINES, PolicyFactory
from repro.cache.policies.evolved import (
    CLOUDPHYSICS_HEURISTICS,
    MSR_HEURISTICS,
    evolved_policy_factories,
)
from repro.cache.request import Trace
from repro.cache.simulator import simulate_many
from repro.workloads.cache import corpus_traces

#: Default trace scaling for the full experiment (kept modest so that the
#: whole corpus runs in minutes on a laptop; see DESIGN.md).
DEFAULT_NUM_REQUESTS = {"cloudphysics": 6000, "msr": 8000}


def dataset_heuristics(dataset: str) -> Dict[str, str]:
    """The evolved heuristics associated with a dataset (paper naming)."""
    if dataset == "cloudphysics":
        return dict(CLOUDPHYSICS_HEURISTICS)
    if dataset == "msr":
        return dict(MSR_HEURISTICS)
    raise ValueError(f"unknown dataset {dataset!r} (use 'cloudphysics' or 'msr')")


def dataset_traces(
    dataset: str,
    trace_count: Optional[int] = None,
    num_requests: Optional[int] = None,
) -> Iterable[Trace]:
    """The synthetic corpus standing in for ``dataset`` (workload registry)."""
    if dataset not in DEFAULT_NUM_REQUESTS:
        raise ValueError(f"unknown dataset {dataset!r} (use 'cloudphysics' or 'msr')")
    requests = num_requests or DEFAULT_NUM_REQUESTS[dataset]
    return corpus_traces(dataset, count=trace_count, num_requests=requests)


@dataclass
class CorpusEvaluation:
    """All simulation results for one dataset.

    ``results`` maps ``trace name -> policy name -> SimulationResult``;
    ``baseline_names`` / ``heuristic_names`` record which policies belong to
    which group (needed by the oracles and Table 2).
    """

    dataset: str
    results: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)
    baseline_names: List[str] = field(default_factory=list)
    heuristic_names: List[str] = field(default_factory=list)
    cache_fraction: float = 0.10

    def traces(self) -> List[str]:
        return list(self.results.keys())

    def improvement_over_fifo(self, trace: str, policy: str) -> float:
        per_policy = self.results[trace]
        return per_policy[policy].improvement_over(per_policy["FIFO"])

    def improvements_for(self, policy: str) -> List[float]:
        """Improvement over FIFO of ``policy`` on every trace (Figure 2's dots)."""
        return [
            self.improvement_over_fifo(trace, policy)
            for trace in self.results
            if policy in self.results[trace]
        ]

    def mean_improvement(self, policy: str) -> float:
        values = self.improvements_for(policy)
        return sum(values) / len(values) if values else 0.0


def evaluate_corpus(
    dataset: str,
    trace_count: Optional[int] = None,
    num_requests: Optional[int] = None,
    cache_fraction: float = 0.10,
    baselines: Optional[Dict[str, PolicyFactory]] = None,
    heuristics: Optional[Dict[str, str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CorpusEvaluation:
    """Simulate baselines + evolved heuristics over a whole corpus.

    ``trace_count`` / ``num_requests`` scale the experiment down (the
    benchmark harness uses a subset; ``None`` means the full corpus at the
    default trace length, as the experiment CLI does).
    """
    baseline_factories = dict(baselines if baselines is not None else BASELINES)
    heuristic_sources = heuristics if heuristics is not None else dataset_heuristics(dataset)
    heuristic_factories = evolved_policy_factories(heuristic_sources)

    policies: Dict[str, PolicyFactory] = {}
    policies.update(baseline_factories)
    policies.update(heuristic_factories)

    evaluation = CorpusEvaluation(
        dataset=dataset,
        baseline_names=list(baseline_factories),
        heuristic_names=list(heuristic_factories),
        cache_fraction=cache_fraction,
    )
    for trace in dataset_traces(dataset, trace_count, num_requests):
        if progress is not None:
            progress(trace.name)
        evaluation.results[trace.name] = simulate_many(
            policies, trace, cache_fraction=cache_fraction
        )
    return evaluation
