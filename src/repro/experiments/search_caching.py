"""§4.2.1 methodology: synthesize a heuristic for one context trace and
compare it against every baseline on that trace.

This is the experiment behind the paper's instance-optimality claim
(§4.2.3): the heuristic synthesized for a context matches or outperforms all
fourteen baselines *on that context*.  The paper uses 20 rounds x 25
candidates; that is the default here too, but the knobs are exposed because
the full run takes several minutes with the interpreted evaluator.

Run via the unified CLI::

    python -m repro run caching-search --set trace=89 --set rounds=20
    python -m repro run caching-search --set dataset=msr --set trace=3 --set rounds=8
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cache.policies import BASELINES
from repro.cache.priority_cache import PriorityFunctionCache
from repro.cache.request import Trace
from repro.cache.simulator import CacheSimulator, cache_size_for, simulate_many
from repro.core.domain import build_search
from repro.core.engine import EngineConfig
from repro.core.results import SearchResult
from repro.experiments.registry import ExperimentDef, register_experiment
from repro.workloads import build_trace


@dataclass
class SearchExperimentResult:
    """Search outcome plus the baseline comparison on the context trace."""

    trace_name: str
    search: SearchResult
    heuristic_miss_ratio: float
    baseline_miss_ratios: Dict[str, float] = field(default_factory=dict)

    @property
    def best_baseline(self) -> str:
        return min(self.baseline_miss_ratios, key=self.baseline_miss_ratios.get)

    @property
    def best_baseline_miss_ratio(self) -> float:
        return self.baseline_miss_ratios[self.best_baseline]

    @property
    def beats_all_baselines(self) -> bool:
        """True when the synthesized heuristic matches/outperforms every baseline."""
        return self.heuristic_miss_ratio <= self.best_baseline_miss_ratio + 1e-9

    @property
    def improvement_over_fifo(self) -> float:
        fifo = self.baseline_miss_ratios["FIFO"]
        if fifo == 0:
            return 0.0
        return (fifo - self.heuristic_miss_ratio) / fifo


def context_trace(dataset: str, index: int, num_requests: Optional[int] = None) -> Trace:
    """The context trace used for one search run."""
    if dataset == "cloudphysics":
        return build_trace("caching/cloudphysics", index=index, num_requests=num_requests or 6000)
    if dataset == "msr":
        return build_trace("caching/msr", index=index, num_requests=num_requests or 8000)
    raise ValueError(f"unknown dataset {dataset!r}")


def run_search_experiment(
    dataset: str = "cloudphysics",
    trace_index: int = 89,
    rounds: int = 20,
    candidates_per_round: int = 25,
    seed: int = 0,
    num_requests: Optional[int] = None,
    cache_fraction: float = 0.10,
    engine_config: Optional[EngineConfig] = None,
    checkpoint_path: Optional[str] = None,
) -> SearchExperimentResult:
    """Run the search on one trace and score the winner against all baselines."""
    trace = context_trace(dataset, trace_index, num_requests)
    setup = build_search(
        "caching",
        rounds=rounds,
        candidates_per_round=candidates_per_round,
        seed=seed,
        trace=trace,
        cache_fraction=cache_fraction,
        engine_config=engine_config,
        checkpoint_path=checkpoint_path,
    )
    search_result = setup.search.run()

    baseline_results = simulate_many(BASELINES, trace, cache_fraction=cache_fraction)
    baseline_miss = {name: r.miss_ratio for name, r in baseline_results.items()}

    # Re-simulate the winner (its evaluator score is -miss_ratio already, but
    # re-running keeps the comparison on exactly the same code path).
    cache = PriorityFunctionCache(
        cache_size_for(trace, cache_fraction),
        search_result.best_program(),
        name="synthesized",
    )
    winner = CacheSimulator().run(cache, trace)

    return SearchExperimentResult(
        trace_name=trace.name,
        search=search_result,
        heuristic_miss_ratio=winner.miss_ratio,
        baseline_miss_ratios=baseline_miss,
    )


def search_experiment_payload(result: SearchExperimentResult) -> dict:
    """Everything the report needs, as plain JSON-serializable data."""
    return {
        "kind": "caching-search",
        "trace_name": result.trace_name,
        "heuristic_miss_ratio": result.heuristic_miss_ratio,
        "baseline_miss_ratios": dict(result.baseline_miss_ratios),
        "best_baseline": result.best_baseline,
        "best_baseline_miss_ratio": result.best_baseline_miss_ratio,
        "beats_all_baselines": result.beats_all_baselines,
        "improvement_over_fifo": result.improvement_over_fifo,
        "total_candidates": result.search.total_candidates,
        "first_pass_check_rate": result.search.first_pass_check_rate(),
        "eval_cache_hit_rate": result.search.eval_cache_hit_rate(),
        "eval_cache_hits": result.search.eval_cache_hits,
        "eval_cache_lookups": result.search.eval_cache_lookups,
        "prompt_tokens": result.search.prompt_tokens,
        "completion_tokens": result.search.completion_tokens,
        "estimated_cost_usd": result.search.estimated_cost_usd,
        "best_source": result.search.best_source(),
    }


def render_search_experiment(payload: dict) -> str:
    """Pure reducer: stored payload -> the printed search report."""
    lines = [
        f"PolicySmith search on trace {payload['trace_name']}",
        f"  candidates evaluated : {payload['total_candidates']}",
        f"  first-pass check rate: {payload['first_pass_check_rate'] * 100:.1f}%",
        f"  eval cache hit rate  : {payload['eval_cache_hit_rate'] * 100:.1f}% "
        f"({payload['eval_cache_hits']}/{payload['eval_cache_lookups']} "
        "evaluations deduplicated)",
        f"  prompt/completion tok: {payload['prompt_tokens']} / {payload['completion_tokens']}",
        f"  estimated API cost   : ${payload['estimated_cost_usd']:.4f}",
        f"  synthesized miss     : {payload['heuristic_miss_ratio']:.4f}",
        f"  best baseline        : {payload['best_baseline']} "
        f"({payload['best_baseline_miss_ratio']:.4f})",
        f"  beats all baselines  : {payload['beats_all_baselines']}",
        f"  improvement over FIFO: {payload['improvement_over_fifo'] * 100:.2f}%",
        "",
        "Synthesized heuristic:",
        payload["best_source"],
    ]
    return "\n".join(lines)


def format_search_experiment(result: SearchExperimentResult) -> str:
    return render_search_experiment(search_experiment_payload(result))


# -- experiment registration --------------------------------------------------------


def _run_caching_search_experiment(
    dataset: str,
    trace: int,
    rounds: int,
    candidates: int,
    requests: Optional[int],
    seed: int,
    cache_fraction: float,
) -> dict:
    result = run_search_experiment(
        dataset=dataset,
        trace_index=trace,
        rounds=rounds,
        candidates_per_round=candidates,
        seed=seed,
        num_requests=requests,
        cache_fraction=cache_fraction,
    )
    return search_experiment_payload(result)


register_experiment(
    ExperimentDef(
        name="caching-search",
        description="§4.2.1: synthesize a heuristic for one trace, compare to all baselines",
        runner=_run_caching_search_experiment,
        renderer=render_search_experiment,
        params={
            "dataset": "cloudphysics",
            "trace": 89,
            "rounds": 20,
            "candidates": 25,
            "requests": None,
            "seed": 0,
            "cache_fraction": 0.10,
        },
    )
)


if __name__ == "__main__":  # pragma: no cover - migration stub
    raise SystemExit(
        "this entry point moved to the unified CLI: "
        "python -m repro run caching-search --set trace=89 --set rounds=20"
    )
