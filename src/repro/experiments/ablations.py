"""Ablations of the search-design choices called out in DESIGN.md.

Three ablations, each answering "did this design choice matter?":

* **parent feedback** -- the evolutionary loop feeds the best candidates
  back as examples (§3); the ablation generates every round from scratch.
* **checker repair** -- the Checker's structured feedback drives one repair
  attempt (§3, §5.0.3); the ablation discards rejected candidates.
* **feature richness** -- the Table-1 aggregates and history features
  (§4.1.1 discusses the template-design trade-off); the ablation restricts
  the Template to per-object features only.

Run via the unified CLI::

    python -m repro run ablations --set rounds=4 --set candidates=10
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional

from repro.cache.search import (
    caching_archetypes,
    caching_seed_programs,
    caching_template,
)
from repro.core.domain import build_search
from repro.core.search import SearchConfig
from repro.core.template import Template
from repro.dsl.grammar import FeatureSpec
from repro.experiments.registry import ExperimentDef, register_experiment
from repro.llm.mock import SyntheticLLMClient, SyntheticLLMConfig
from repro.workloads import build_trace


@dataclass
class AblationResult:
    """Best miss ratio achieved by one search variant."""

    name: str
    best_miss_ratio: float
    valid_candidates: int
    total_candidates: int


def _restricted_template() -> Template:
    """The Template with only per-object features (no aggregates, no history)."""
    full = caching_template()
    spec = FeatureSpec(
        function_name=full.spec.function_name,
        params=list(full.spec.params),
        scalar_params=list(full.spec.scalar_params),
        object_attrs={"obj_info": list(full.spec.object_attrs["obj_info"])},
        object_methods={},
        key_params=list(full.spec.key_params),
        integer_only=False,
        result_var="score",
    )
    return Template(
        name="cache-priority-objonly",
        spec=spec,
        description=full.description,
        constraints=list(full.constraints),
        seed_programs=caching_seed_programs(),
    )


def _run_variant(
    name: str,
    template: Template,
    trace,
    seed: int,
    search_config: SearchConfig,
    archetypes: Optional[List[str]],
) -> AblationResult:
    """One search variant, assembled through the shared domain entry point.

    The client is built explicitly (and passed as an override) because the
    restricted variants need an exact -- possibly empty -- archetype list,
    which the caching domain's ``prepare_llm_config`` would otherwise
    backfill with the full set.
    """
    client = SyntheticLLMClient(
        template.spec,
        config=SyntheticLLMConfig(archetypes=list(archetypes or [])),
        seed=seed,
    )
    setup = build_search(
        "caching",
        seed=seed,
        trace=trace,
        template=template,
        client=client,
        search_config=search_config,
    )
    result = setup.search.run()
    best_miss = -result.best.score if result.best is not None else 1.0
    return AblationResult(
        name=name,
        best_miss_ratio=best_miss,
        valid_candidates=len(result.valid_candidates()),
        total_candidates=result.total_candidates,
    )


def run_ablations(
    trace_index: int = 89,
    num_requests: int = 3000,
    rounds: int = 4,
    candidates_per_round: int = 10,
    seed: int = 0,
) -> List[AblationResult]:
    """Run the full search and its three ablated variants on one trace."""
    trace = build_trace("caching/cloudphysics", index=trace_index, num_requests=num_requests)
    full_template = caching_template()
    archetypes = caching_archetypes()
    variants = [
        ("full", full_template, 2, 1, archetypes),
        ("no-parent-feedback", full_template, 0, 1, archetypes),
        ("no-repair", full_template, 2, 0, archetypes),
        ("object-features-only", _restricted_template(), 2, 1, None),
    ]
    results: List[AblationResult] = []
    for name, template, top_k, repairs, arch in variants:
        # top_k_parents must stay >= 1 for the search config; "no parent
        # feedback" is modelled by not passing any examples (top_k=1 but the
        # generator gets an empty parent list when include_seeds is False).
        config = SearchConfig(
            rounds=rounds,
            candidates_per_round=candidates_per_round,
            top_k_parents=max(1, top_k),
            repair_attempts=repairs,
            include_seeds=top_k > 0,
        )
        results.append(_run_variant(name, template, trace, seed, config, arch))
    return results


def format_ablations(results: List[AblationResult]) -> str:
    lines = [
        "Search ablations (lower best-miss-ratio is better)",
        f"{'variant':<24} {'best miss':>10} {'valid':>7} {'total':>7}",
    ]
    for result in results:
        lines.append(
            f"{result.name:<24} {result.best_miss_ratio:>10.4f} "
            f"{result.valid_candidates:>7} {result.total_candidates:>7}"
        )
    return "\n".join(lines)


# -- experiment registration --------------------------------------------------------


def ablations_payload(results: List[AblationResult]) -> dict:
    return {"kind": "ablations", "results": [asdict(result) for result in results]}


def render_ablations(payload: dict) -> str:
    """Pure reducer: stored payload -> the printed ablation table."""
    return format_ablations([AblationResult(**raw) for raw in payload["results"]])


def _run_ablations_experiment(
    trace: int, requests: int, rounds: int, candidates: int, seed: int
) -> dict:
    results = run_ablations(
        trace_index=trace,
        num_requests=requests,
        rounds=rounds,
        candidates_per_round=candidates,
        seed=seed,
    )
    return ablations_payload(results)


register_experiment(
    ExperimentDef(
        name="ablations",
        description="Search-design ablations: parent feedback, repair, feature richness",
        runner=_run_ablations_experiment,
        renderer=render_ablations,
        params={
            "trace": 89,
            "requests": 3000,
            "rounds": 4,
            "candidates": 10,
            "seed": 0,
        },
    )
)


if __name__ == "__main__":  # pragma: no cover - migration stub
    raise SystemExit(
        "this entry point moved to the unified CLI: "
        "python -m repro run ablations --set rounds=4"
    )
