"""§5.0.3 behaviour spread: utilisation and queueing delay of the candidates
that compiled.

The paper evaluates the successfully compiled congestion-control candidates
on a 12 Mbps, 20 ms emulated link and reports that their behaviour varies
widely: bandwidth utilisation from 23 % to 98 % and average queueing delays
from 2 ms to 40 ms.  The shape to reproduce is that spread -- automated
search explores genuinely diverse policies -- rather than the exact
endpoints.

Run via the unified CLI::

    python -m repro run cc-behaviour --set candidates=40 --set duration=4
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List

from repro.cc.evaluator import default_cc_simulation_config
from repro.cc.policies import CubicController, RenoController
from repro.core.domain import build_search
from repro.experiments.registry import ExperimentDef, register_experiment
from repro.netsim.simulator import NetworkSimulator


@dataclass
class CandidateBehaviour:
    """Link-level behaviour of one compiled candidate."""

    name: str
    utilization: float
    mean_queueing_delay_ms: float
    loss_rate: float


@dataclass
class BehaviourReport:
    """Behaviour of every compiled candidate plus the reference baselines."""

    candidates: List[CandidateBehaviour] = field(default_factory=list)
    baselines: List[CandidateBehaviour] = field(default_factory=list)

    def utilization_range(self) -> tuple:
        if not self.candidates:
            return (0.0, 0.0)
        values = [c.utilization for c in self.candidates]
        return (min(values), max(values))

    def delay_range_ms(self) -> tuple:
        if not self.candidates:
            return (0.0, 0.0)
        values = [c.mean_queueing_delay_ms for c in self.candidates]
        return (min(values), max(values))


def _baseline_behaviour(name: str, controller, duration_s: float) -> CandidateBehaviour:
    simulator = NetworkSimulator(default_cc_simulation_config(duration_s))
    simulator.add_flow(controller)
    metrics = simulator.run()
    return CandidateBehaviour(
        name=name,
        utilization=metrics.utilization,
        mean_queueing_delay_ms=metrics.mean_queueing_delay_ms,
        loss_rate=metrics.loss_rate,
    )


def run_cc_behaviour(
    num_candidates: int = 50,
    seed: int = 23,
    duration_s: float = 4.0,
    include_baselines: bool = True,
) -> BehaviourReport:
    """Generate candidates via the search machinery and measure the compiled ones.

    The candidates come from a short search (which is how the paper produced
    them: generation + verification + evaluation), so each one has already
    passed the kernel-constraint checker before it is measured here.
    """
    candidates_per_round = 25
    rounds = max(1, (num_candidates + candidates_per_round - 1) // candidates_per_round)
    setup = build_search(
        "cc",
        rounds=rounds,
        candidates_per_round=candidates_per_round,
        seed=seed,
        duration_s=duration_s,
    )
    result = setup.search.run()

    report = BehaviourReport()
    for scored in result.valid_candidates():
        if scored.candidate.origin == "seed":
            continue
        details = scored.evaluation.details if scored.evaluation else {}
        report.candidates.append(
            CandidateBehaviour(
                name=scored.candidate.candidate_id,
                utilization=float(details.get("utilization", 0.0)),
                mean_queueing_delay_ms=float(details.get("mean_queueing_delay_ms", 0.0)),
                loss_rate=float(details.get("loss_rate", 0.0)),
            )
        )
        if len(report.candidates) >= num_candidates:
            break

    if include_baselines:
        report.baselines.append(_baseline_behaviour("Reno", RenoController(), duration_s))
        report.baselines.append(_baseline_behaviour("CUBIC", CubicController(), duration_s))
    return report


def format_behaviour(report: BehaviourReport) -> str:
    util_lo, util_hi = report.utilization_range()
    delay_lo, delay_hi = report.delay_range_ms()
    lines = [
        f"Compiled candidates evaluated on the 12 Mbps / 20 ms link: {len(report.candidates)}",
        f"  bandwidth utilisation : {util_lo * 100:.0f}% .. {util_hi * 100:.0f}%",
        f"  mean queueing delay   : {delay_lo:.1f} ms .. {delay_hi:.1f} ms",
    ]
    for baseline in report.baselines:
        lines.append(
            f"  reference {baseline.name:<6}: util {baseline.utilization * 100:.0f}%, "
            f"delay {baseline.mean_queueing_delay_ms:.1f} ms, "
            f"loss {baseline.loss_rate * 100:.2f}%"
        )
    return "\n".join(lines)


# -- experiment registration --------------------------------------------------------


def behaviour_payload(report: BehaviourReport) -> dict:
    return {
        "kind": "cc-behaviour",
        "candidates": [asdict(candidate) for candidate in report.candidates],
        "baselines": [asdict(baseline) for baseline in report.baselines],
    }


def render_behaviour(payload: dict) -> str:
    """Pure reducer: stored payload -> the printed behaviour-spread report."""
    report = BehaviourReport(
        candidates=[CandidateBehaviour(**raw) for raw in payload["candidates"]],
        baselines=[CandidateBehaviour(**raw) for raw in payload["baselines"]],
    )
    return format_behaviour(report)


def _run_cc_behaviour_experiment(candidates: int, seed: int, duration: float) -> dict:
    report = run_cc_behaviour(
        num_candidates=candidates, seed=seed, duration_s=duration
    )
    return behaviour_payload(report)


register_experiment(
    ExperimentDef(
        name="cc-behaviour",
        description="§5.0.3: utilisation/queueing-delay spread of compiled candidates",
        runner=_run_cc_behaviour_experiment,
        renderer=render_behaviour,
        params={"candidates": 50, "seed": 23, "duration": 4.0},
    )
)


if __name__ == "__main__":  # pragma: no cover - migration stub
    raise SystemExit(
        "this entry point moved to the unified CLI: "
        "python -m repro run cc-behaviour --set candidates=40"
    )
