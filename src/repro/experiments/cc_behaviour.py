"""§5.0.3 behaviour spread: utilisation and queueing delay of the candidates
that compiled.

The paper evaluates the successfully compiled congestion-control candidates
on a 12 Mbps, 20 ms emulated link and reports that their behaviour varies
widely: bandwidth utilisation from 23 % to 98 % and average queueing delays
from 2 ms to 40 ms.  The shape to reproduce is that spread -- automated
search explores genuinely diverse policies -- rather than the exact
endpoints.

Run as a script::

    python -m repro.experiments.cc_behaviour --candidates 40 --duration 4
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cc.evaluator import CongestionControlEvaluator, default_cc_simulation_config
from repro.cc.policies import CubicController, RenoController
from repro.core.domain import build_search
from repro.netsim.simulator import NetworkSimulator


@dataclass
class CandidateBehaviour:
    """Link-level behaviour of one compiled candidate."""

    name: str
    utilization: float
    mean_queueing_delay_ms: float
    loss_rate: float


@dataclass
class BehaviourReport:
    """Behaviour of every compiled candidate plus the reference baselines."""

    candidates: List[CandidateBehaviour] = field(default_factory=list)
    baselines: List[CandidateBehaviour] = field(default_factory=list)

    def utilization_range(self) -> tuple:
        if not self.candidates:
            return (0.0, 0.0)
        values = [c.utilization for c in self.candidates]
        return (min(values), max(values))

    def delay_range_ms(self) -> tuple:
        if not self.candidates:
            return (0.0, 0.0)
        values = [c.mean_queueing_delay_ms for c in self.candidates]
        return (min(values), max(values))


def _baseline_behaviour(name: str, controller, duration_s: float) -> CandidateBehaviour:
    simulator = NetworkSimulator(default_cc_simulation_config(duration_s))
    simulator.add_flow(controller)
    metrics = simulator.run()
    return CandidateBehaviour(
        name=name,
        utilization=metrics.utilization,
        mean_queueing_delay_ms=metrics.mean_queueing_delay_ms,
        loss_rate=metrics.loss_rate,
    )


def run_cc_behaviour(
    num_candidates: int = 50,
    seed: int = 23,
    duration_s: float = 4.0,
    include_baselines: bool = True,
) -> BehaviourReport:
    """Generate candidates via the search machinery and measure the compiled ones.

    The candidates come from a short search (which is how the paper produced
    them: generation + verification + evaluation), so each one has already
    passed the kernel-constraint checker before it is measured here.
    """
    candidates_per_round = 25
    rounds = max(1, (num_candidates + candidates_per_round - 1) // candidates_per_round)
    setup = build_search(
        "cc",
        rounds=rounds,
        candidates_per_round=candidates_per_round,
        seed=seed,
        duration_s=duration_s,
    )
    result = setup.search.run()

    report = BehaviourReport()
    for scored in result.valid_candidates():
        if scored.candidate.origin == "seed":
            continue
        details = scored.evaluation.details if scored.evaluation else {}
        report.candidates.append(
            CandidateBehaviour(
                name=scored.candidate.candidate_id,
                utilization=float(details.get("utilization", 0.0)),
                mean_queueing_delay_ms=float(details.get("mean_queueing_delay_ms", 0.0)),
                loss_rate=float(details.get("loss_rate", 0.0)),
            )
        )
        if len(report.candidates) >= num_candidates:
            break

    if include_baselines:
        report.baselines.append(_baseline_behaviour("Reno", RenoController(), duration_s))
        report.baselines.append(_baseline_behaviour("CUBIC", CubicController(), duration_s))
    return report


def format_behaviour(report: BehaviourReport) -> str:
    util_lo, util_hi = report.utilization_range()
    delay_lo, delay_hi = report.delay_range_ms()
    lines = [
        f"Compiled candidates evaluated on the 12 Mbps / 20 ms link: {len(report.candidates)}",
        f"  bandwidth utilisation : {util_lo * 100:.0f}% .. {util_hi * 100:.0f}%",
        f"  mean queueing delay   : {delay_lo:.1f} ms .. {delay_hi:.1f} ms",
    ]
    for baseline in report.baselines:
        lines.append(
            f"  reference {baseline.name:<6}: util {baseline.utilization * 100:.0f}%, "
            f"delay {baseline.mean_queueing_delay_ms:.1f} ms, "
            f"loss {baseline.loss_rate * 100:.2f}%"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--candidates", type=int, default=50)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--duration", type=float, default=4.0)
    args = parser.parse_args(argv)

    report = run_cc_behaviour(
        num_candidates=args.candidates, seed=args.seed, duration_s=args.duration
    )
    print(format_behaviour(report))


if __name__ == "__main__":
    main()
