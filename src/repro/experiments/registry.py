"""The experiment registry: every paper artefact as a named spec + reducer.

Each experiment module registers one :class:`ExperimentDef` -- a name, its
default parameters, a *runner* producing a JSON-serializable payload, and a
*renderer* (the reducer) that turns a payload back into the printed
table/figure.  The split is what makes artifacts re-renderable offline:
``repro run <name>`` stores the payload, and ``repro report <dir>`` feeds the
stored payload through the same pure renderer, reproducing the output
byte-for-byte without re-running anything.

Registration mirrors the search-domain registry
(:mod:`repro.core.domain`): built-in experiments are imported lazily on
first lookup, and new experiments plug in with
:func:`register_experiment` without touching the CLI.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

#: A runner takes the merged parameters as keyword arguments and returns the
#: payload dictionary; a renderer is a pure function payload -> report text.
Runner = Callable[..., Dict[str, Any]]
Renderer = Callable[[Dict[str, Any]], str]


@dataclass(frozen=True)
class ExperimentDef:
    """One registered experiment.

    ``accepts_progress`` marks runners taking a presentation-only
    ``progress`` keyword (stderr progress lines).  It is passed alongside --
    never as part of -- ``params``, so it influences neither the stored
    spec.json nor the run directory's config hash.
    """

    name: str
    description: str
    runner: Runner
    renderer: Renderer
    params: Dict[str, Any] = field(default_factory=dict)
    accepts_progress: bool = False


_REGISTRY: Dict[str, ExperimentDef] = {}

#: Experiments shipped with the repository, imported lazily on first lookup.
_BUILTIN_EXPERIMENT_MODULES = {
    "caching-search": "repro.experiments.search_caching",
    "figure2": "repro.experiments.figure2",
    "table2": "repro.experiments.table2",
    "ablations": "repro.experiments.ablations",
    "cost-accounting": "repro.experiments.cost_accounting",
    "cc-compilation": "repro.experiments.cc_compilation",
    "cc-behaviour": "repro.experiments.cc_behaviour",
}


def register_experiment(experiment: ExperimentDef) -> ExperimentDef:
    """Register ``experiment`` under its name (last registration wins)."""
    if not experiment.name:
        raise ValueError("an ExperimentDef must declare a non-empty name")
    _REGISTRY[experiment.name] = experiment
    return experiment


def get_experiment(name: str) -> ExperimentDef:
    """Look up a registered experiment, lazily importing built-in ones."""
    if name not in _REGISTRY and name in _BUILTIN_EXPERIMENT_MODULES:
        importlib.import_module(_BUILTIN_EXPERIMENT_MODULES[name])
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        known = sorted(set(_REGISTRY) | set(_BUILTIN_EXPERIMENT_MODULES))
        raise KeyError(f"unknown experiment {name!r}; available: {known}") from exc


def available_experiments() -> List[str]:
    """Names of every resolvable experiment (built-ins included)."""
    for name in _BUILTIN_EXPERIMENT_MODULES:
        if name not in _REGISTRY:
            importlib.import_module(_BUILTIN_EXPERIMENT_MODULES[name])
    return sorted(_REGISTRY)


def merge_params(
    experiment: ExperimentDef, overrides: Dict[str, Any]
) -> Dict[str, Any]:
    """Layer CLI/user overrides onto the experiment's defaults, strictly."""
    unknown = set(overrides) - set(experiment.params)
    if unknown:
        raise ValueError(
            f"experiment {experiment.name!r} has no parameter(s) "
            f"{sorted(unknown)}; available: {sorted(experiment.params)}"
        )
    merged = dict(experiment.params)
    merged.update(overrides)
    return merged


def run_experiment(
    name: str, *, progress: bool = False, **overrides: Any
) -> Dict[str, Any]:
    """Run a registered experiment and return its payload."""
    experiment = get_experiment(name)
    kwargs = merge_params(experiment, overrides)
    if experiment.accepts_progress:
        kwargs["progress"] = progress
    return experiment.runner(**kwargs)


def params_hash(name: str, params: Dict[str, Any]) -> str:
    """Deterministic identity of one experiment invocation (for run dirs)."""
    canonical = json.dumps(
        {"experiment": name, "params": params}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
