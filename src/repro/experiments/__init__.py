"""Experiment harness: one module per table/figure of the paper.

Every module exposes a ``run_*`` function returning plain data structures
plus a ``main()`` entry point that prints the same rows/series the paper
reports.  See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
recorded paper-vs-measured outcomes.

Quick map:

========================  =====================================================
Paper artefact            Module
========================  =====================================================
Figure 2a / 2b            :mod:`repro.experiments.figure2`
Table 2                   :mod:`repro.experiments.table2`
§4.2.1 search (1 trace)   :mod:`repro.experiments.search_caching`
§4.2.6 cost accounting    :mod:`repro.experiments.cost_accounting`
§5.0.3 compile rates      :mod:`repro.experiments.cc_compilation`
§5.0.3 behaviour spread   :mod:`repro.experiments.cc_behaviour`
Ablations (design §4)     :mod:`repro.experiments.ablations`
========================  =====================================================
"""

from repro.experiments.corpus import CorpusEvaluation, evaluate_corpus
from repro.experiments.figure2 import Figure2Row, run_figure2
from repro.experiments.table2 import Table2Entry, run_table2
from repro.experiments.search_caching import run_search_experiment
from repro.experiments.cc_compilation import CompilationReport, run_cc_compilation
from repro.experiments.cc_behaviour import BehaviourReport, run_cc_behaviour
from repro.experiments.cost_accounting import run_cost_accounting

__all__ = [
    "CorpusEvaluation",
    "evaluate_corpus",
    "Figure2Row",
    "run_figure2",
    "Table2Entry",
    "run_table2",
    "run_search_experiment",
    "CompilationReport",
    "run_cc_compilation",
    "BehaviourReport",
    "run_cc_behaviour",
    "run_cost_accounting",
]
