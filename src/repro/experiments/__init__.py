"""Experiment harness: one module per table/figure of the paper.

Every module exposes a ``run_*`` function returning plain data structures and
registers itself in the experiment registry
(:mod:`repro.experiments.registry`) as a named spec + reducer, so the unified
CLI runs it (``python -m repro run <name>``), stores its payload as an
artifact, and re-renders the report offline (``python -m repro report``).
See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
paper-vs-measured outcomes.

Quick map:

========================  ================  ===================================
Paper artefact            Registry name     Module
========================  ================  ===================================
Figure 2a / 2b            ``figure2``       :mod:`repro.experiments.figure2`
Table 2                   ``table2``        :mod:`repro.experiments.table2`
§4.2.1 search (1 trace)   ``caching-search``  :mod:`repro.experiments.search_caching`
§4.2.6 cost accounting    ``cost-accounting`` :mod:`repro.experiments.cost_accounting`
§5.0.3 compile rates      ``cc-compilation``  :mod:`repro.experiments.cc_compilation`
§5.0.3 behaviour spread   ``cc-behaviour``    :mod:`repro.experiments.cc_behaviour`
Ablations (design §4)     ``ablations``     :mod:`repro.experiments.ablations`
========================  ================  ===================================
"""

from repro.experiments.corpus import CorpusEvaluation, evaluate_corpus
from repro.experiments.figure2 import Figure2Row, run_figure2
from repro.experiments.registry import (
    ExperimentDef,
    available_experiments,
    get_experiment,
    register_experiment,
    run_experiment,
)
from repro.experiments.table2 import Table2Entry, run_table2
from repro.experiments.search_caching import run_search_experiment
from repro.experiments.cc_compilation import CompilationReport, run_cc_compilation
from repro.experiments.cc_behaviour import BehaviourReport, run_cc_behaviour
from repro.experiments.cost_accounting import run_cost_accounting

__all__ = [
    "CorpusEvaluation",
    "evaluate_corpus",
    "ExperimentDef",
    "available_experiments",
    "get_experiment",
    "register_experiment",
    "run_experiment",
    "Figure2Row",
    "run_figure2",
    "Table2Entry",
    "run_table2",
    "run_search_experiment",
    "CompilationReport",
    "run_cc_compilation",
    "BehaviourReport",
    "run_cc_behaviour",
    "run_cost_accounting",
]
