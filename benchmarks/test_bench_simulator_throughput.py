"""Micro-benchmarks of the two substrates themselves.

These are not paper artefacts; they track the requests/second of the cache
simulator (per policy family) and the events/second of the network
simulator, so substrate regressions are visible independently of the
experiment harness.
"""

from __future__ import annotations

import pytest

from repro.cache.policies import ALL_POLICIES
from repro.cache.policies.evolved import program_for
from repro.cache.priority_cache import PriorityFunctionCache
from repro.cache.simulator import CacheSimulator, cache_size_for
from repro.cc.policies import RenoController
from repro.netsim.simulator import SimulationConfig, run_single_flow
from repro.workloads import build_trace


@pytest.fixture(scope="module")
def bench_trace():
    return build_trace("caching/cloudphysics", index=89, num_requests=4000)


@pytest.mark.parametrize("name", ["FIFO", "LRU", "GDSF", "S3-FIFO", "SIEVE", "LHD", "Cacheus"])
def test_cache_policy_throughput(benchmark, bench_trace, name):
    size = cache_size_for(bench_trace)

    def run():
        return CacheSimulator().run(ALL_POLICIES[name](size), bench_trace)

    result = benchmark(run)
    assert result.requests == len(bench_trace)


@pytest.mark.parametrize("backend", ["interpreter", "compiled"])
def test_priority_cache_throughput(benchmark, bench_trace, backend):
    """The Template cache (Heuristic A) -- the search's hot path -- under the
    tree-walking interpreter vs the compiled DSL backend (the default)."""
    size = cache_size_for(bench_trace)
    program = program_for("Heuristic A")

    def run():
        cache = PriorityFunctionCache(
            size, program, name="Heuristic A", backend=backend
        )
        return CacheSimulator().run(cache, bench_trace)

    result = benchmark(run)
    assert result.requests == len(bench_trace)
    benchmark.extra_info["requests_per_sec"] = round(
        len(bench_trace) / benchmark.stats.stats.mean
    )


def test_netsim_throughput(benchmark):
    def run():
        return run_single_flow(RenoController(), SimulationConfig(duration_s=2.0))

    metrics = benchmark(run)
    assert metrics.utilization > 0.8
