"""Benchmark: the §4.2.1 search methodology plus its cost accounting.

Paper references: §4.2.1 (20 rounds x 25 candidates, LRU/LFU seeds, top-2
parent feedback), §4.2.3 (the synthesized heuristic matches or outperforms
all baselines on its context trace), §4.2.6 (token / cost accounting).
"""

from __future__ import annotations

from repro.experiments.cost_accounting import format_cost_report, run_cost_accounting
from repro.experiments.search_caching import format_search_experiment, run_search_experiment

from benchmarks.conftest import run_once


def test_search_on_context_trace_w89(benchmark, bench_scale):
    result = run_once(
        benchmark,
        run_search_experiment,
        dataset="cloudphysics",
        trace_index=89,
        rounds=bench_scale["search_rounds"],
        candidates_per_round=bench_scale["search_candidates"],
        seed=1,
        num_requests=bench_scale["num_requests"] or None,
    )
    # §4.2.3 shape: the synthesized heuristic lands at (or above) the level of
    # the best baseline on its own context trace.
    assert result.heuristic_miss_ratio <= result.best_baseline_miss_ratio * 1.05
    assert result.improvement_over_fifo > 0
    assert result.search.prompt_tokens > 0
    print()
    print(format_search_experiment(result))


def test_search_cost_accounting(benchmark, bench_scale):
    report = run_once(
        benchmark,
        run_cost_accounting,
        trace_indices=[89],
        rounds=bench_scale["search_rounds"],
        candidates_per_round=bench_scale["search_candidates"],
        num_requests=2000,
    )
    assert report.total_cost_usd > 0
    assert report.evaluation_cpu_seconds > 0
    print()
    print(format_cost_report(report))
