"""Benchmarks of the unified search engine and the compiled DSL fast path.

Two families:

* **Candidate throughput** -- candidates/second through the full search
  pipeline (generate -> check/repair -> evaluate), comparing the legacy
  configuration (serial evaluation, tree-walking interpreter, no caching)
  against the engine's fast path (parallel workers, compiled DSL, dedup +
  memoization).
* **Simulator throughput** -- requests/second of the priority-queue
  Template cache under the interpreter vs the compiled backend (the
  evaluation hot loop itself).

Throughput numbers are attached to the pytest-benchmark ``extra_info`` so
they appear in the report; the headline figures are recorded in CHANGES.md.
"""

from __future__ import annotations

import time

import pytest

from repro.cache.policies.evolved import program_for
from repro.cache.priority_cache import PriorityFunctionCache
from repro.cache.simulator import CacheSimulator, cache_size_for
from repro.core.domain import build_search
from repro.core.engine import EngineConfig
from repro.workloads import build_trace

from benchmarks.conftest import run_once


@pytest.fixture(scope="module")
def engine_trace():
    return build_trace("caching/cloudphysics", index=89, num_requests=2500)


SEARCH_VARIANTS = {
    "serial-interpreted": dict(
        backend="interpreter",
        engine_config=EngineConfig(max_workers=1, dedup=False, memoize=False),
    ),
    "parallel-compiled": dict(
        backend="compiled",
        engine_config=EngineConfig(max_workers=4, executor="process"),
    ),
}


@pytest.mark.parametrize("variant", sorted(SEARCH_VARIANTS))
def test_search_candidate_throughput(
    benchmark, engine_trace, bench_scale, bench_records, variant
):
    """Candidates/second of the full search pipeline, §4.2.1 shape."""

    def run():
        setup = build_search(
            "caching",
            trace=engine_trace,
            rounds=bench_scale["search_rounds"],
            candidates_per_round=bench_scale["search_candidates"],
            seed=1,
            **SEARCH_VARIANTS[variant],
        )
        start = time.perf_counter()
        result = setup.search.run()
        elapsed = time.perf_counter() - start
        return result, elapsed

    result, elapsed = run_once(benchmark, run)
    assert result.best is not None
    benchmark.extra_info["candidates_per_sec"] = round(
        result.total_candidates / elapsed, 1
    )
    benchmark.extra_info["eval_cache_hit_rate"] = round(
        result.eval_cache_hit_rate(), 3
    )
    bench_records[f"search_{variant}"] = {
        "candidates_per_sec": round(result.total_candidates / elapsed, 1),
        "eval_cache_hit_rate": round(result.eval_cache_hit_rate(), 3),
    }
    print(
        f"\n[{variant}] {result.total_candidates} candidates in {elapsed:.2f}s "
        f"= {result.total_candidates / elapsed:.1f} cand/s, "
        f"eval-cache hit rate {result.eval_cache_hit_rate() * 100:.0f}%"
    )


@pytest.mark.parametrize("backend", ["interpreter", "compiled"])
def test_simulator_request_throughput(benchmark, engine_trace, bench_records, backend):
    """Requests/second of the Template cache under each DSL backend."""
    size = cache_size_for(engine_trace)
    program = program_for("Heuristic A")

    def run():
        cache = PriorityFunctionCache(size, program, name="bench", backend=backend)
        return CacheSimulator().run(cache, engine_trace)

    result = benchmark(run)
    assert result.requests == len(engine_trace)
    ops = benchmark.stats.stats.mean
    benchmark.extra_info["requests_per_sec"] = round(len(engine_trace) / ops)
    bench_records[f"simulate_{backend}"] = {
        "requests_per_sec": round(len(engine_trace) / ops)
    }


def test_parallel_compiled_search_matches_serial_interpreted(engine_trace):
    """The fast path must not change search results (fixed seed)."""
    results = {}
    for variant, kwargs in SEARCH_VARIANTS.items():
        results[variant] = build_search(
            "caching",
            trace=engine_trace,
            rounds=2,
            candidates_per_round=6,
            seed=4,
            **kwargs,
        ).search.run()
    serial, fast = results["serial-interpreted"], results["parallel-compiled"]
    assert serial.best_source() == fast.best_source()
    assert [c.score for c in serial.candidates] == [c.score for c in fast.candidates]
