"""Distributed-fanout benchmark: spool-queue workers vs a process pool.

Why the distributed executor exists: worker processes are *independent
failure domains*.  A hard worker crash (SIGKILL, OOM) breaks a
``ProcessPoolExecutor`` outright -- every queued future fails over to the
coordinator's serial inline rescue, so one bad candidate collapses the
batch to 1x.  The spool queue loses one worker, reclaims one lease after
the TTL, respawns, and keeps the fan-out.

This benchmark runs the same evaluation-bound batch (fixed GIL-releasing
sleep per unit, one crashing unit) through both backends with 4 workers and
gates the distributed throughput at ``MIN_SPEEDUP``x the process pool's --
with identical scores, so the win is pure scheduling.
"""

from __future__ import annotations

import time

from repro.core.engine import BatchStats, EngineConfig
from repro.core.executors import EvalUnit, create_executor
from repro.dsl import parse

from benchmarks.conftest import run_once
from benchmarks.dist_bench_helpers import SleepyCrashOnceEvaluator

#: Acceptance gate: distributed candidates/s vs the crash-broken process pool.
MIN_SPEEDUP = 1.5

WORKERS = 4
NUM_UNITS = 40
SLEEP_S = 0.25
#: The crashing unit's score (unit 0, so the pool breaks while the batch is
#: still almost entirely queued -- the worst case the spool queue absorbs).
TRIGGER = 1000.0
LEASE_TTL_S = 0.5

SOURCES = [f"def f(x) {{ return {TRIGGER if n == 0 else float(n)} }}" for n in range(NUM_UNITS)]
EXPECTED = [TRIGGER if n == 0 else float(n) for n in range(NUM_UNITS)]


def units():
    return [EvalUnit(program=parse(source)) for source in SOURCES]


def timed_batch(executor):
    try:
        start = time.perf_counter()
        results = executor.run_units(units(), BatchStats())
        return results, time.perf_counter() - start
    finally:
        executor.close()


def test_distributed_fanout_survives_crashes(benchmark, bench_records, tmp_path):
    process_eval = SleepyCrashOnceEvaluator(SLEEP_S, tmp_path / "crash-pool", TRIGGER)
    config = EngineConfig(executor="process", max_workers=WORKERS)
    pool_results, pool_s = timed_batch(create_executor("process", config, process_eval))

    dist_eval = SleepyCrashOnceEvaluator(SLEEP_S, tmp_path / "crash-dist", TRIGGER)
    config = EngineConfig(
        executor="distributed", max_workers=WORKERS, lease_ttl_s=LEASE_TTL_S
    )
    dist_executor = create_executor("distributed", config, dist_eval)
    dist_results, dist_s = run_once(benchmark, timed_batch, dist_executor)

    # Both backends survived the crash with the right answers.
    assert [r.score for r in pool_results] == EXPECTED
    assert [r.score for r in dist_results] == EXPECTED
    assert (tmp_path / "crash-pool").exists() and (tmp_path / "crash-dist").exists()
    # ... but the spool queue reclaimed a lease instead of breaking the pool.
    assert dist_executor.tasks_reclaimed >= 1

    pool_cps = NUM_UNITS / pool_s
    dist_cps = NUM_UNITS / dist_s
    speedup = dist_cps / pool_cps
    benchmark.extra_info["process_candidates_per_sec"] = round(pool_cps, 1)
    benchmark.extra_info["distributed_candidates_per_sec"] = round(dist_cps, 1)
    benchmark.extra_info["distributed_speedup"] = round(speedup, 2)
    bench_records["distributed_fanout"] = {
        "process_candidates_per_sec": round(pool_cps, 1),
        "distributed_candidates_per_sec": round(dist_cps, 1),
        "speedup": round(speedup, 2),
        "tasks_reclaimed": dist_executor.tasks_reclaimed,
        "workers": WORKERS,
    }
    print(
        f"\n[distributed] process pool {pool_cps:.1f} cand/s (crash broke it), "
        f"spool queue {dist_cps:.1f} cand/s = {speedup:.2f}x "
        f"({dist_executor.tasks_reclaimed} lease(s) reclaimed)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"distributed workers only {speedup:.2f}x faster than the "
        f"crash-broken process pool on an evaluation-bound batch "
        f"(gate: {MIN_SPEEDUP}x)"
    )
