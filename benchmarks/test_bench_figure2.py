"""Benchmark: regenerate Figure 2 (miss-ratio improvement over FIFO).

Paper reference: §4.2.4, Figure 2a (CloudPhysics) and Figure 2b (MSR).
Expected shape: GDSF is the strongest baseline; the strongest synthesized
heuristics sit at or near the top of the ordering; PS-Oracle >= B-Oracle >=
every baseline.
"""

from __future__ import annotations

from repro.experiments.figure2 import figure2_from_evaluation, format_figure2
from repro.experiments.corpus import evaluate_corpus

from benchmarks.conftest import run_once


def _figure2(dataset: str, scale: dict, trace_key: str):
    evaluation = evaluate_corpus(
        dataset,
        trace_count=scale[trace_key],
        num_requests=scale["num_requests"],
    )
    return figure2_from_evaluation(evaluation)


def _check_shape(figure):
    b_oracle = figure.row("B-Oracle")
    ps_oracle = figure.row("PS-Oracle")
    assert ps_oracle.mean_improvement >= b_oracle.mean_improvement - 1e-9
    for row in figure.rows:
        if row.kind == "baseline":
            assert b_oracle.mean_improvement >= row.mean_improvement - 1e-9
    # The best synthesized heuristic is competitive with the best baseline.
    best_heuristic = max(
        (r.mean_improvement for r in figure.rows if r.kind == "heuristic")
    )
    best_baseline = max(
        (r.mean_improvement for r in figure.rows if r.kind == "baseline")
    )
    assert best_heuristic >= best_baseline - 0.05


def test_figure2_cloudphysics(benchmark, bench_scale):
    figure = run_once(benchmark, _figure2, "cloudphysics", bench_scale, "cloudphysics_traces")
    _check_shape(figure)
    print()
    print(format_figure2(figure, top_baselines=5))


def test_figure2_msr(benchmark, bench_scale):
    figure = run_once(benchmark, _figure2, "msr", bench_scale, "msr_traces")
    _check_shape(figure)
    print()
    print(format_figure2(figure, top_baselines=5))
