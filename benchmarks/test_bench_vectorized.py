"""Benchmarks of the vectorized (fused columnar) simulation backend.

Two gates, both measured in-process so the ratios are stable under machine
noise even though absolute req/s numbers are not:

* ``simulate_vectorized`` must clear the ISSUE-6 floors -- >= 3x the
  compiled-scalar backend and >= 10x the tree-walking interpreter on the
  same trace and kernel;
* the batched ``simulate_many`` path (columns decoded once, every candidate
  scored off the shared arrays) reports candidates/second so the nightly
  regression gate guards amortized dispatch too.

Results must stay bit-identical across backends -- asserted here before any
timing, because a fast wrong simulator is worse than a slow right one.
"""

from __future__ import annotations

import time

import pytest

from repro.cache.policies.evolved import EVOLVED_HEURISTICS, program_for
from repro.cache.priority_cache import PriorityFunctionCache
from repro.cache.simulator import CacheSimulator, cache_size_for, simulate_many
from repro.workloads import build_trace

MIN_SPEEDUP_VS_COMPILED = 3.0
MIN_SPEEDUP_VS_INTERPRETER = 10.0


@pytest.fixture(scope="module")
def bench_trace():
    return build_trace("caching/cloudphysics", index=89, num_requests=2500)


def _best_time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_simulator_speedup(benchmark, bench_trace, bench_records):
    size = cache_size_for(bench_trace)
    program = program_for("Heuristic A")
    bench_trace.columns()  # decode once; every backend walks the same trace

    def run(backend):
        cache = PriorityFunctionCache(size, program, name="bench", backend=backend)
        return CacheSimulator().run(cache, bench_trace)

    results = {b: run(b) for b in ("interpreter", "compiled", "vectorized")}
    assert results["vectorized"] == results["compiled"] == results["interpreter"]

    t_interpreter = _best_time(lambda: run("interpreter"))
    t_compiled = _best_time(lambda: run("compiled"), repeats=5)
    benchmark(lambda: run("vectorized"))
    t_vectorized = benchmark.stats.stats.min

    n = len(bench_trace)
    vs_compiled = t_compiled / t_vectorized
    vs_interpreter = t_interpreter / t_vectorized
    record = {
        "requests_per_sec": round(n / t_vectorized),
        "vs_compiled_speedup": round(vs_compiled, 2),
        "vs_interpreter_speedup": round(vs_interpreter, 2),
    }
    benchmark.extra_info.update(record)
    bench_records["simulate_vectorized"] = record
    print(
        f"\n[vectorized] {record['requests_per_sec']} req/s = "
        f"{vs_compiled:.1f}x compiled ({n / t_compiled:.0f} req/s), "
        f"{vs_interpreter:.1f}x interpreter ({n / t_interpreter:.0f} req/s)"
    )
    assert vs_compiled >= MIN_SPEEDUP_VS_COMPILED, (
        f"vectorized backend only {vs_compiled:.2f}x over compiled "
        f"(floor {MIN_SPEEDUP_VS_COMPILED}x)"
    )
    assert vs_interpreter >= MIN_SPEEDUP_VS_INTERPRETER, (
        f"vectorized backend only {vs_interpreter:.2f}x over interpreter "
        f"(floor {MIN_SPEEDUP_VS_INTERPRETER}x)"
    )


def test_batched_candidate_scoring(benchmark, bench_trace, bench_records):
    """Candidates/second through ``simulate_many``'s amortized columnar path."""
    size = cache_size_for(bench_trace)

    def factories(backend):
        return {
            name: (
                lambda capacity, program=program_for(name): PriorityFunctionCache(
                    capacity, program, backend=backend
                )
            )
            for name in sorted(EVOLVED_HEURISTICS)
        }

    vectorized = benchmark(
        lambda: simulate_many(factories("vectorized"), bench_trace, cache_size=size)
    )
    elapsed = benchmark.stats.stats.min
    compiled = simulate_many(factories("compiled"), bench_trace, cache_size=size)
    assert vectorized == compiled  # batching must not change any candidate's result

    candidates_per_sec = round(len(vectorized) / elapsed, 1)
    benchmark.extra_info["candidates_per_sec"] = candidates_per_sec
    bench_records["simulate_many_vectorized"] = {
        "candidates_per_sec": candidates_per_sec
    }
    print(f"\n[simulate_many/vectorized] {candidates_per_sec} candidates/s")
