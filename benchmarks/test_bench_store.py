"""Warm-start benchmark: a sweep over a populated evaluation store.

The persistent evaluation store turns repeated work -- sweep seeds, reruns,
resumes -- into disk reads.  This benchmark runs the same 2-scenario
micro-sweep twice against one store directory and gates the speedup: the
second (warm) sweep re-generates and re-checks every candidate but serves
every evaluation from disk, and must complete at least ``MIN_SPEEDUP``x
faster than the cold sweep while producing byte-identical ``result.json``
files.
"""

from __future__ import annotations

import time

from repro.core.spec import RunSpec, run_sweep

from benchmarks.conftest import run_once

#: Acceptance gate: warm sweep at least this many times faster than cold.
MIN_SPEEDUP = 3.0


def sweep_spec(bench_scale) -> RunSpec:
    requests = bench_scale["num_requests"] or 6000
    return RunSpec(
        domain="caching",
        name="store-bench",
        domain_kwargs={
            "workloads": [
                {"name": "caching/zipf-hot", "num_requests": requests},
                {"name": "caching/scan-storm", "num_requests": requests},
            ],
            "reducer": "mean",
        },
        search={
            "rounds": bench_scale["search_rounds"],
            "candidates_per_round": bench_scale["search_candidates"],
        },
        seeds=[0, 1],
    )


def test_sweep_warm_start_speedup(benchmark, bench_scale, bench_records, tmp_path):
    spec = sweep_spec(bench_scale)
    store_dir = tmp_path / "evalstore"

    def timed_sweep(root):
        start = time.perf_counter()
        outcome = run_sweep(
            spec, store=tmp_path / root, eval_store=store_dir, max_parallel=1
        )
        return outcome, time.perf_counter() - start

    cold, cold_s = timed_sweep("cold")
    warm, warm_s = run_once(benchmark, timed_sweep, "warm")

    # Byte-identical per-seed results, cold vs warm.
    for cold_run, warm_run in zip(cold.outcomes, warm.outcomes):
        assert (
            (cold_run.artifact_dir / "result.json").read_bytes()
            == (warm_run.artifact_dir / "result.json").read_bytes()
        )

    # The warm sweep really ran from disk: every memory miss was a store hit.
    lookups = sum(o.setup.engine.store_lookups for o in warm.outcomes)
    hits = sum(o.setup.engine.store_hits for o in warm.outcomes)
    assert lookups > 0 and hits == lookups

    speedup = cold_s / warm_s
    disk_hit_rate = hits / lookups
    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(warm_s, 3)
    benchmark.extra_info["warm_start_speedup"] = round(speedup, 2)
    bench_records["store_warm_start"] = {
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(speedup, 2),
        "disk_hit_rate": round(disk_hit_rate, 3),
    }
    print(
        f"\n[store] cold sweep {cold_s:.2f}s, warm sweep {warm_s:.2f}s "
        f"= {speedup:.1f}x, disk hit rate {disk_hit_rate * 100:.0f}%"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm-start sweep only {speedup:.1f}x faster than cold "
        f"(gate: {MIN_SPEEDUP}x); store at {store_dir}"
    )
