"""Picklable evaluators for the distributed-fanout benchmark.

They live outside the test module so both kinds of remote worker can
unpickle them by module path: ``ProcessPoolExecutor`` workers (pickled
through the pool initializer) and ``repro worker`` subprocesses (which
receive the coordinator's ``sys.path`` through ``PYTHONPATH``).
"""

from __future__ import annotations

import os
import time

from repro.core.evaluator import EvaluationResult, Evaluator
from repro.dsl import Interpreter


class SleepyEvaluator(Evaluator):
    """Evaluation-bound stand-in: each unit costs a fixed GIL-releasing sleep.

    The sleep models what makes real searches fan out well -- evaluation
    wall time dominated by simulation, not coordinator CPU -- so the
    benchmark measures scheduling, not interpreter speed, and stays
    meaningful on a single-core runner.
    """

    def __init__(self, sleep_s: float):
        self.sleep_s = sleep_s

    def evaluate_program(self, program):
        time.sleep(self.sleep_s)
        value = Interpreter().run(program, {"x": 1})
        return EvaluationResult(score=float(value), valid=True)


class SleepyCrashOnceEvaluator(SleepyEvaluator):
    """Sleepy evaluator that hard-kills its host process exactly once.

    ``os._exit`` models a SIGKILL/OOM: no exception, no cleanup.  The marker
    file makes the crash one-shot, so the re-dispatched unit succeeds.  A
    process pool is *broken* by this (every queued future fails over to the
    coordinator's serial inline rescue); the spool queue loses one worker,
    reclaims one lease, and keeps its fan-out.
    """

    def __init__(self, sleep_s: float, marker_path: str, trigger_score: float):
        super().__init__(sleep_s)
        self.marker_path = str(marker_path)
        self.trigger_score = trigger_score

    def evaluate_program(self, program):
        result = super().evaluate_program(program)
        if result.score == self.trigger_score and not os.path.exists(self.marker_path):
            with open(self.marker_path, "w", encoding="utf-8") as fh:
                fh.write("crashed once")
            os._exit(1)
        return result
