"""Streaming-vs-materialized trace throughput (acceptance gate for the
streaming pipeline: simulator throughput within 10% of -- or better than --
the in-memory path, measured on the policy-evaluation hot path).

The comparison isolates the simulate loop: the materialized baseline
iterates a pre-built request list, the streaming paths re-decode (chunked
CSV) or re-map (cached columnar sidecar) on every pass.  A generous margin
below the 10% target guards the suite against CI noise; the exact ratio is
recorded in ``extra_info``.
"""

from __future__ import annotations

import time

import pytest

from repro.cache.policies.evolved import program_for
from repro.cache.priority_cache import PriorityFunctionCache
from repro.cache.simulator import CacheSimulator, cache_size_for
from repro.cache.request import Trace
from repro.traces.streaming import open_csv_trace
from repro.workloads import build_trace

from benchmarks.conftest import run_once


@pytest.fixture(scope="module")
def trace_csv(tmp_path_factory):
    trace = build_trace("caching/cloudphysics", index=89, num_requests=4000)
    path = tmp_path_factory.mktemp("streaming") / "w89.csv"
    trace.to_csv(path)
    return path, trace


def _simulate(trace_like):
    size = cache_size_for(trace_like)
    cache = PriorityFunctionCache(
        size, program_for("Heuristic A"), name="Heuristic A", backend="compiled"
    )
    return CacheSimulator().run(cache, trace_like)


def _throughput(trace_like, repeats: int = 3) -> float:
    """Best-of-N requests/second of the simulate loop over ``trace_like``."""
    best = float("inf")
    requests = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = _simulate(trace_like)
        best = min(best, time.perf_counter() - start)
        requests = result.requests
    return requests / best


@pytest.mark.parametrize("mode", ["materialized", "csv-stream", "cached-decode"])
def test_trace_read_throughput(benchmark, trace_csv, mode):
    path, _trace = trace_csv
    if mode == "materialized":
        trace_like = Trace.from_csv(path)
    elif mode == "csv-stream":
        trace_like = open_csv_trace(path)
    else:
        trace_like = open_csv_trace(path, cache_decoded=True)
        trace_like.footprint_bytes()  # warm the stats pass outside the timer

    result = run_once(benchmark, _simulate, trace_like)
    assert result.requests == 4000
    benchmark.extra_info["requests_per_sec"] = round(4000 / benchmark.stats.stats.mean)


def test_streaming_throughput_within_tolerance(trace_csv):
    """The headline acceptance number, asserted directly."""
    path, _trace = trace_csv
    materialized = Trace.from_csv(path)
    streaming = open_csv_trace(path, cache_decoded=True)
    streaming.footprint_bytes()  # build the sidecar + stats before timing

    base = _throughput(materialized)
    streamed = _throughput(streaming)
    ratio = streamed / base
    # Target: within 10% of the materialized path.  Assert a wider bound so
    # shared-CI jitter cannot flake the suite; the measured ratio is printed
    # for the benchmark log.
    print(f"streaming/materialized throughput ratio: {ratio:.3f}")
    assert ratio > 0.75, (
        f"streaming throughput degraded to {ratio:.2f}x of the materialized "
        f"path ({streamed:.0f} vs {base:.0f} req/s)"
    )
