"""Benchmark: regenerate Table 2 (share of traces where each synthesized
heuristic beats all fourteen baselines).

Paper reference: §4.2.3, Table 2.  Expected shape: each corpus has at least
one heuristic winning on a substantial fraction of its traces, and no
heuristic needs to win everywhere.
"""

from __future__ import annotations

from repro.experiments.corpus import evaluate_corpus
from repro.experiments.table2 import format_table2, table2_from_evaluation

from benchmarks.conftest import run_once


def _table2(dataset: str, scale: dict, trace_key: str):
    evaluation = evaluate_corpus(
        dataset,
        trace_count=scale[trace_key],
        num_requests=scale["num_requests"],
    )
    return table2_from_evaluation(evaluation)


def test_table2_cloudphysics(benchmark, bench_scale):
    entries = run_once(benchmark, _table2, "cloudphysics", bench_scale, "cloudphysics_traces")
    assert len(entries) == 4
    assert max(e.win_fraction for e in entries) >= 0.25
    print()
    print(format_table2(entries))


def test_table2_msr(benchmark, bench_scale):
    entries = run_once(benchmark, _table2, "msr", bench_scale, "msr_traces")
    assert len(entries) == 4
    assert max(e.win_fraction for e in entries) >= 0.25
    print()
    print(format_table2(entries))
