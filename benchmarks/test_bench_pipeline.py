"""Pipelined-round benchmark: generation/evaluation overlap vs serial.

The pipelined scheduler exists for generation-bound searches: when each
LLM call takes as long as evaluating its candidates, overlapping the two
phases should approach a 2x throughput win.  The synthetic client is
CPU-cheap, so this benchmark wraps it in a ``SlowClient`` that sleeps per
completion (as a network provider would block), calibrated so generation
and evaluation take comparable wall time -- then gates the pipelined
speedup at ``MIN_SPEEDUP``x *with byte-identical results*.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.artifacts import search_result_to_dict
from repro.core.domain import build_search

from benchmarks.conftest import run_once

#: Acceptance gate: pipelined candidates/s vs the serial schedule.
MIN_SPEEDUP = 1.5

SEED = 13
BATCH_SIZE = 2
#: Client delay = this factor x the measured evaluation wall per
#: completion.  >1 makes the search *generation-bound* (the scenario the
#: pipeline exists for): evaluation hides entirely behind the deterministic
#: sleep, so the measured ratio is stable at ~(1 + 1/factor)x.
CALIBRATION_FACTOR = 1.3
WORKLOADS = [{"name": "caching/zipf-hot", "num_objects": 400}]


class SlowClient:
    """Adds a per-completion delay to any client (sleep releases the GIL,
    exactly like a network provider blocked on its socket)."""

    def __init__(self, inner: Any, delay_s: float):
        self.inner = inner
        self.delay_s = delay_s

    @property
    def model(self) -> str:
        return self.inner.model

    def __getattr__(self, name: str) -> Any:
        # get_state/set_state pass through: the pipeline's speculation
        # snapshots must reach the real RNG.
        return getattr(self.inner, name)

    def complete(self, messages, n=1, temperature=1.0):
        time.sleep(self.delay_s * max(1, n))
        return self.inner.complete(messages, n=n, temperature=temperature)


def make_setup(bench_scale, *, delay_s: float, pipeline: bool):
    kwargs = dict(
        rounds=bench_scale["search_rounds"],
        candidates_per_round=bench_scale["search_candidates"],
        seed=SEED,
        # 4x the suite's default request count: the phases being overlapped
        # must dwarf the fixed per-round bookkeeping (and the pipeline's
        # executor hand-offs) for the ratio to be about scheduling rather
        # than overhead.
        workloads=[
            {**ref, "num_requests": 4 * (bench_scale["num_requests"] or 6000)}
            for ref in WORKLOADS
        ],
        reducer="mean",
    )
    probe = build_search("caching", **kwargs)  # a fresh, same-seed client
    setup = build_search(
        "caching", client=SlowClient(probe.client, delay_s), **kwargs
    )
    setup.search.config.pipeline = pipeline
    setup.generator.batch_size = BATCH_SIZE
    return setup


def timed_run(setup):
    start = time.perf_counter()
    result = setup.search.run()
    return result, time.perf_counter() - start


def test_pipeline_overlap_speedup(benchmark, bench_scale, bench_records):
    # Calibrate the client delay against the real evaluation wall per
    # completion, measured by zero-delay serial runs.  Best of two: CPU
    # contention only ever inflates the wall, so the min is the true cost,
    # and calibrating high would shrink the deterministic sleep share that
    # keeps the measured ratio stable.
    calibration, _ = timed_run(make_setup(bench_scale, delay_s=0.0, pipeline=False))
    recal, _ = timed_run(make_setup(bench_scale, delay_s=0.0, pipeline=False))
    eval_s = min(
        sum(r.evaluation_s for r in calibration.rounds),
        sum(r.evaluation_s for r in recal.rounds),
    )
    completions = max(
        1,
        sum(r.generated for r in calibration.rounds)
        + sum(sum(r.failure_codes.values()) for r in calibration.rounds),
    )
    delay_s = CALIBRATION_FACTOR * eval_s / completions

    serial, serial_s = timed_run(make_setup(bench_scale, delay_s=delay_s, pipeline=False))
    (piped, piped_s) = run_once(
        benchmark, timed_run, make_setup(bench_scale, delay_s=delay_s, pipeline=True)
    )
    # Best-of-two walls: the sleeps are deterministic, so a repeat filters
    # CPU-contention spikes out of the evaluation phase.
    _, serial_retry = timed_run(make_setup(bench_scale, delay_s=delay_s, pipeline=False))
    serial_s = min(serial_s, serial_retry)
    _, piped_retry = timed_run(make_setup(bench_scale, delay_s=delay_s, pipeline=True))
    piped_s = min(piped_s, piped_retry)

    # Scheduling only: the pipelined run's results are identical.
    assert search_result_to_dict(piped) == search_result_to_dict(serial)
    overlap_s = sum(r.overlap_s for r in piped.rounds)
    assert overlap_s > 0, "the pipelined run reported no overlapped wall time"

    serial_cps = serial.total_candidates / serial_s
    piped_cps = piped.total_candidates / piped_s
    speedup = piped_cps / serial_cps
    benchmark.extra_info["serial_candidates_per_sec"] = round(serial_cps, 1)
    benchmark.extra_info["pipeline_candidates_per_sec"] = round(piped_cps, 1)
    benchmark.extra_info["pipeline_speedup"] = round(speedup, 2)
    bench_records["pipeline_overlap"] = {
        "serial_candidates_per_sec": round(serial_cps, 1),
        "pipeline_candidates_per_sec": round(piped_cps, 1),
        "speedup": round(speedup, 2),
        "overlap_s": round(overlap_s, 2),
        "client_delay_s": round(delay_s, 4),
    }
    print(
        f"\n[pipeline] serial {serial_cps:.1f} cand/s, "
        f"pipelined {piped_cps:.1f} cand/s = {speedup:.2f}x "
        f"({overlap_s:.2f}s of generation hidden behind evaluation)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"pipelined rounds only {speedup:.2f}x faster than the serial "
        f"schedule on a generation-bound search (gate: {MIN_SPEEDUP}x)"
    )
