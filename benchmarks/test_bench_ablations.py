"""Benchmark: ablations of the search-design choices (DESIGN.md §4).

Not a paper table -- these quantify the design decisions the paper argues
for qualitatively (parent feedback, checker-driven repair, rich Table-1
features).
"""

from __future__ import annotations

from repro.experiments.ablations import format_ablations, run_ablations

from benchmarks.conftest import run_once


def test_search_ablations(benchmark, bench_scale):
    results = run_once(
        benchmark,
        run_ablations,
        trace_index=89,
        num_requests=2000,
        rounds=bench_scale["search_rounds"],
        candidates_per_round=bench_scale["search_candidates"],
    )
    by_name = {r.name: r for r in results}
    assert set(by_name) == {
        "full", "no-parent-feedback", "no-repair", "object-features-only",
    }
    # Every variant still produces a usable heuristic; the full configuration
    # is never the worst of the four.
    miss_ratios = {name: r.best_miss_ratio for name, r in by_name.items()}
    assert all(0 < v < 1 for v in miss_ratios.values())
    assert miss_ratios["full"] <= max(miss_ratios.values())
    print()
    print(format_ablations(results))
