"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures (DESIGN.md
§3 maps them).  They are macro-benchmarks -- entire experiments, not
micro-kernels -- so every benchmark runs exactly once per invocation
(``pedantic`` with one round); the interesting output is the experiment's
qualitative result (asserted) and the wall-clock cost (reported by
pytest-benchmark).

Scale knobs: the benchmarks run on reduced corpora / candidate counts so the
whole suite finishes in a few minutes.  Pass ``--bench-full`` (or set
``REPRO_BENCH_FULL=1``) to run the paper-scale versions (full 105-trace
CloudPhysics corpus, 100 candidates, 20x25 search).  The scale a run used is
recorded as ``bench_full`` in BENCH_engine.json so a regression comparison
knows whether the two files are even comparable
(``check_regression.py`` warns when the scales differ).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def pytest_addoption(parser):
    parser.addoption(
        "--bench-full",
        action="store_true",
        default=False,
        help="run the paper-scale benchmark suite and mark the resulting "
        "BENCH_engine.json with bench_full=true (equivalent to "
        "REPRO_BENCH_FULL=1)",
    )


def pytest_configure(config):
    global FULL
    if config.getoption("--bench-full", default=False):
        FULL = True
        # Keep the env var in sync for anything spawned by the benchmarks.
        os.environ["REPRO_BENCH_FULL"] = "1"

#: Machine-readable headline numbers (req/s, candidates/s, hit rates),
#: collected by whichever benchmarks ran and written to BENCH_engine.json at
#: the repo root on session exit -- the start of the perf trajectory.
BENCH_RECORDS_FILE = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

_BENCH_RECORDS: dict = {}


@pytest.fixture(scope="session")
def bench_records() -> dict:
    """Mutable record sink; benchmarks drop their headline numbers here."""
    return _BENCH_RECORDS


def pytest_sessionfinish(session, exitstatus):
    if _BENCH_RECORDS:
        payload = dict(sorted(_BENCH_RECORDS.items()))
        payload["bench_full"] = FULL
        BENCH_RECORDS_FILE.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )


@pytest.fixture(scope="session")
def bench_scale() -> dict:
    """Experiment sizes for the benchmark suite (reduced unless REPRO_BENCH_FULL=1)."""
    if FULL:
        return {
            "cloudphysics_traces": None,      # all 105
            "msr_traces": None,               # all 14
            "num_requests": None,             # dataset defaults
            "search_rounds": 20,
            "search_candidates": 25,
            "cc_candidates": 100,
            "cc_behaviour_candidates": 50,
            "cc_duration_s": 8.0,
        }
    return {
        "cloudphysics_traces": 10,
        "msr_traces": 6,
        "num_requests": 2500,
        "search_rounds": 3,
        "search_candidates": 10,
        "cc_candidates": 60,
        "cc_behaviour_candidates": 12,
        "cc_duration_s": 2.0,
    }


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
