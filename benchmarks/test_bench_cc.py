"""Benchmarks: the §5.0.3 congestion-control results.

* compilation rates: first-pass verifier acceptance vs after-feedback repair,
  with the caching Template as the comparison row (paper: 63 %, +19 %, 92 %);
* behaviour spread: utilisation and mean queueing delay across the compiled
  candidates on the 12 Mbps / 20 ms link (paper: 23-98 %, 2-40 ms).
"""

from __future__ import annotations

from repro.experiments.cc_behaviour import format_behaviour, run_cc_behaviour
from repro.experiments.cc_compilation import format_compilation, run_cc_compilation

from benchmarks.conftest import run_once


def test_cc_compilation_rates(benchmark, bench_scale):
    reports = run_once(
        benchmark,
        run_cc_compilation,
        num_candidates=bench_scale["cc_candidates"],
        seed=11,
        include_caching=True,
    )
    by_name = {report.template: report for report in reports}
    kernel, caching = by_name["cong-control"], by_name["cache-priority"]
    assert kernel.first_pass_rate < caching.first_pass_rate
    assert 0.4 <= kernel.first_pass_rate <= 0.85
    assert kernel.repaired_rate > 0.05
    assert caching.first_pass_rate >= 0.8
    assert set(kernel.failure_codes) & {"float-arith", "div-by-zero"}
    print()
    print(format_compilation(reports))


def test_cc_behaviour_spread(benchmark, bench_scale):
    report = run_once(
        benchmark,
        run_cc_behaviour,
        num_candidates=bench_scale["cc_behaviour_candidates"],
        seed=23,
        duration_s=bench_scale["cc_duration_s"],
    )
    util_lo, util_hi = report.utilization_range()
    delay_lo, delay_hi = report.delay_range_ms()
    assert util_hi - util_lo > 0.3          # wide behavioural diversity
    assert delay_hi <= 60
    print()
    print(format_behaviour(report))
