"""Static-screening overhead benchmark: rung "-1" must be near-free.

The interval screener's whole value proposition is that rejecting a
degenerate candidate costs a tree walk instead of a simulation.  This
benchmark screens a 64-candidate batch of grammar-generated caching
programs and gates the cost against one rung-0 evaluation (the fidelity
ladder's cheapest rung, a 10% trace prefix) of the same batch: screening
must come in below ``MAX_SCREEN_FRACTION`` of the rung-0 bill, i.e. at
least ``1 / MAX_SCREEN_FRACTION``x cheaper.  The speedup is the tracked
metric, so the nightly regression gate guards screening overhead like
every other rate.
"""

from __future__ import annotations

import random
import time

from repro.cache.search import CachingEvaluator, caching_input_intervals
from repro.dsl.abstract import StaticScreener
from repro.dsl.grammar import random_program
from repro.cache.search import caching_feature_spec
from repro.workloads import build_trace

from benchmarks.conftest import run_once

#: Acceptance gate: screening the batch must cost < 5% of one rung-0
#: evaluation of the same batch.
MAX_SCREEN_FRACTION = 0.05

BATCH_SIZE = 64
RUNG0_FIDELITY = 0.1

#: Rung-0 is a 10% prefix, so the trace is sized to make that prefix a
#: realistic screening-rung workload (800 requests), matching what the
#: fidelity ladder actually runs in a search.
TRACE_REQUESTS = 8000


def make_batch():
    spec = caching_feature_spec()
    return [random_program(spec, random.Random(seed)) for seed in range(BATCH_SIZE)]


def test_static_screen_overhead(benchmark, bench_records):
    programs = make_batch()
    screener = StaticScreener(caching_input_intervals())
    screener.screen(programs[0])  # warm imports/dispatch out of the timing

    def screen_all():
        return [screener.screen(program) for program in programs]

    verdicts = run_once(benchmark, screen_all)
    screen_s = benchmark.stats.stats.min
    screened_out = sum(1 for v in verdicts if v.screened)

    trace = build_trace("caching/zipf-hot", num_requests=TRACE_REQUESTS, num_objects=400)
    rung0 = CachingEvaluator(trace).at_fidelity(RUNG0_FIDELITY)
    start = time.perf_counter()
    for program in programs:
        rung0.evaluate(program)
    rung0_eval_s = time.perf_counter() - start

    fraction = screen_s / rung0_eval_s
    speedup = rung0_eval_s / screen_s
    record = {
        "screen_s": round(screen_s, 4),
        "rung0_eval_s": round(rung0_eval_s, 4),
        "eval_over_screen_speedup": round(speedup, 1),
        "screened_out": screened_out,
    }
    benchmark.extra_info.update(record)
    bench_records["static_screen"] = record
    print(
        f"\n[static-screen] {BATCH_SIZE} candidates screened in {screen_s * 1e3:.1f} ms "
        f"({screened_out} degenerate) vs rung-0 evaluation {rung0_eval_s * 1e3:.1f} ms "
        f"= {speedup:.0f}x cheaper ({fraction:.2%} of the rung-0 bill)"
    )
    assert fraction < MAX_SCREEN_FRACTION, (
        f"screening a {BATCH_SIZE}-candidate batch cost {fraction:.1%} of one "
        f"rung-0 evaluation (gate: < {MAX_SCREEN_FRACTION:.0%})"
    )
