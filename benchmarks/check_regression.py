"""Benchmark-regression gate: compare BENCH_engine.json against a baseline.

The benchmark suite writes its headline numbers (requests/s, candidates/s,
warm-start speedups, hit rates) to ``BENCH_engine.json`` at the repo root.
Until now a rerun silently overwrote that file; this comparator is what
turns the committed file into a guarded baseline:

    python benchmarks/check_regression.py \
        --baseline /tmp/baseline.json --current BENCH_engine.json

exits non-zero when any tracked metric regresses by more than ``--threshold``
(default 20%) versus the baseline.  The nightly ``benchmark-nightly``
workflow snapshots the committed file before running the suite and feeds
both to this script; it is equally runnable locally (snapshot, rerun, compare).

Tracked metrics are the *rate-shaped* numbers -- throughputs, speedups, hit
rates -- where direction is unambiguous (higher is better).  Raw wall-clock
seconds (``*_s``) are deliberately untracked: they also vary with workload
scale knobs and machine load, and every one of them already has a rate or
speedup twin that is tracked.  Counters (``screened_out``, rung lists, the
``bench_full`` flag) are context, not metrics.  The ``static_screen``
section follows the same pattern: ``eval_over_screen_speedup`` (how many
times cheaper screening a batch is than one rung-0 evaluation of it) is the
gated metric; its ``screen_s`` / ``rung0_eval_s`` inputs are untracked
wall-clock context.

Absolute throughputs (``*_per_sec``) are only comparable across runs of the
same machine class; a baseline committed from one machine says nothing about
a 20% delta on different hardware.  ``--profile relative`` therefore
restricts the gate to machine-relative metrics (speedups and hit rates,
which divide out the hardware) -- that is what CI uses, since the committed
baseline and the runner are different machine classes.  The default
``--profile all`` additionally gates the absolute throughputs and is the
right choice locally (snapshot, rerun, compare on one machine).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, Tuple

#: Metric-name suffixes that make a numeric value a tracked, higher-is-better
#: metric.  The ``relative`` subset divides hardware out (speedups, rates)
#: and is safe to gate across machine classes; ``_per_sec`` throughputs are
#: absolute and only gated under ``--profile all``.
RELATIVE_SUFFIXES = ("_rate", "speedup")
TRACKED_SUFFIXES = ("_per_sec",) + RELATIVE_SUFFIXES

#: Explicitly untracked suffixes (documented above); anything numeric that is
#: neither tracked nor listed here is reported as "untracked" so a new
#: benchmark metric cannot slip past review unnoticed.  ``_reclaimed`` and
#: ``workers`` are the distributed-fanout benchmark's context counters (how
#: many leases the crash cost, the fan-out width) -- shape, not speed.
UNTRACKED_SUFFIXES = ("_s", "_out", "_full", "_reclaimed", "workers")


def flatten(data: dict, prefix: str = "") -> Iterator[Tuple[str, object]]:
    for key, value in sorted(data.items()):
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            yield from flatten(value, path)
        else:
            yield path, value


def tracked_metrics(data: dict, profile: str = "all") -> Dict[str, float]:
    suffixes = RELATIVE_SUFFIXES if profile == "relative" else TRACKED_SUFFIXES
    metrics: Dict[str, float] = {}
    for path, value in flatten(data):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if path.endswith(suffixes):
            metrics[path] = float(value)
    return metrics


def compare(
    baseline: dict, current: dict, threshold: float, profile: str = "all"
) -> Tuple[list, list, list, list]:
    """Returns ``(rows, regressions, missing, notes)`` for the two metric sets.

    ``rows`` is every comparable tracked metric as
    ``(name, base, now, delta)``; ``regressions`` the subset beyond the
    threshold; ``missing`` the baseline metrics absent from the current run
    (a benchmark that stops emitting a metric must fail the gate, not
    silently un-gate itself); ``notes`` human-readable remarks.
    """
    base_metrics = tracked_metrics(baseline, profile)
    current_metrics = tracked_metrics(current, profile)
    rows, regressions, missing, notes = [], [], [], []
    for name, base in sorted(base_metrics.items()):
        if name not in current_metrics:
            missing.append(name)
            continue
        now = current_metrics[name]
        delta = (now - base) / base if base else 0.0
        rows.append((name, base, now, delta))
        if delta < -threshold:
            regressions.append((name, base, now, delta))
    for name in sorted(set(current_metrics) - set(base_metrics)):
        notes.append(f"new metric {name} (no baseline; not gated)")
    for path, value in flatten(current):
        if (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and not path.endswith(TRACKED_SUFFIXES)
            and not path.endswith(UNTRACKED_SUFFIXES)
        ):
            notes.append(f"numeric metric {path} matches no tracked/untracked suffix")
    return rows, regressions, missing, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a tracked benchmark metric regresses vs a baseline."
    )
    parser.add_argument(
        "--baseline",
        required=True,
        help="baseline BENCH_engine.json (e.g. a snapshot of the committed file)",
    )
    parser.add_argument(
        "--current",
        default="BENCH_engine.json",
        help="freshly generated BENCH_engine.json (default: ./BENCH_engine.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated fractional regression (default: 0.20 = 20%%)",
    )
    parser.add_argument(
        "--profile",
        choices=["all", "relative"],
        default="all",
        help="'all' gates every tracked metric (same-machine comparisons); "
        "'relative' gates only speedups/hit rates (cross-machine, e.g. CI)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="tolerate baseline metrics absent from the current run "
        "(default: a vanished metric fails the gate -- a benchmark that "
        "stops reporting must not silently un-gate itself)",
    )
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be a fraction in (0, 1)")

    try:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        current = json.loads(Path(args.current).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if baseline.get("bench_full") != current.get("bench_full"):
        # Scale mismatch (a full baseline vs a smoke run, or vice versa):
        # absolute throughputs are not comparable, but a large regression in
        # a machine-relative metric is still worth surfacing -- warn and
        # continue rather than refuse.
        print(
            "warning: baseline and current were produced at different "
            f"benchmark scales (bench_full {baseline.get('bench_full')} vs "
            f"{current.get('bench_full')}); absolute throughput deltas are "
            "not meaningful across scales -- interpret with care",
            file=sys.stderr,
        )

    rows, regressions, missing, notes = compare(
        baseline, current, args.threshold, args.profile
    )
    if not rows:
        print("error: no tracked metrics in common with the baseline", file=sys.stderr)
        return 2
    width = max(len(name) for name, _b, _n, _d in rows)
    print(f"{'metric':<{width}} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name, base, now, delta in rows:
        flag = "  << REGRESSION" if delta < -args.threshold else ""
        print(f"{name:<{width}} {base:>12.3f} {now:>12.3f} {delta:>+7.1%}{flag}")
    for name in missing:
        suffix = " (tolerated: --allow-missing)" if args.allow_missing else ""
        print(f"missing: {name} absent from current run{suffix}")
    for note in notes:
        print(f"note: {note}")
    failures = []
    if regressions:
        failures.append(
            f"{len(regressions)} tracked metric(s) regressed more than "
            f"{args.threshold:.0%}"
        )
    if missing and not args.allow_missing:
        failures.append(
            f"{len(missing)} baseline metric(s) missing from the current run"
        )
    if failures:
        print(f"\n{'; '.join(failures)} vs {args.baseline}", file=sys.stderr)
        return 1
    print(f"\nall {len(rows)} tracked metrics within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
