"""Multi-fidelity scheduler benchmark: successive halving vs full fidelity.

The fidelity ladder exists to stop paying full evaluation budget for
candidates the search is about to discard.  This benchmark runs the same
fixed-seed caching search twice -- once ladder-disabled, once under a 3-rung
``screen``-mode ladder -- and gates the throughput win: the ladder run must
process at least ``MIN_SPEEDUP``x more candidates per second *at equal final
quality* (same best candidate, same full-fidelity best score).
"""

from __future__ import annotations

import time

from repro.core.spec import RunSpec, run

from benchmarks.conftest import run_once

#: Acceptance gate: candidates/s under the ladder vs full-fidelity.
MIN_SPEEDUP = 1.5

LADDER = {"rungs": [0.1, 0.3, 1.0], "eta": 3.0, "min_keep": 3}


def fidelity_spec(bench_scale, ladder=None) -> RunSpec:
    requests = bench_scale["num_requests"] or 6000
    return RunSpec(
        domain="caching",
        name="fidelity-bench",
        domain_kwargs={
            "workloads": [
                {"name": "caching/zipf-hot", "num_requests": requests},
                {"name": "caching/scan-storm", "num_requests": requests},
            ],
            "reducer": "mean",
        },
        search={
            "rounds": bench_scale["search_rounds"],
            "candidates_per_round": bench_scale["search_candidates"],
        },
        fidelity=ladder,
    )


def test_fidelity_ladder_speedup(benchmark, bench_scale, bench_records):
    def timed(spec):
        start = time.perf_counter()
        outcome = run(spec, eval_store=None)
        return outcome, time.perf_counter() - start

    full, full_s = timed(fidelity_spec(bench_scale))
    ladder, ladder_s = run_once(
        benchmark, timed, fidelity_spec(bench_scale, ladder=LADDER)
    )

    # Equal final quality: the ladder promoted the true winner all the way
    # up, so the best candidate and its (full-fidelity) score are identical.
    assert full.result.best is not None and ladder.result.best is not None
    assert (
        ladder.result.best.candidate.candidate_id
        == full.result.best.candidate.candidate_id
    )
    assert ladder.result.best.score == full.result.best.score
    assert ladder.result.best.evaluation.full_fidelity

    # The ladder really screened work out rather than re-labelling it (one
    # elimination decision can cover a whole dedup group, so the candidate
    # count is at least the decision count).
    engine = ladder.setup.engine
    assert engine.rung_eliminations > 0
    screened = sum(
        1
        for c in ladder.result.candidates
        if c.evaluation is not None and not c.evaluation.full_fidelity
    )
    assert screened >= engine.rung_eliminations

    total = full.result.total_candidates
    full_cps = total / full_s
    ladder_cps = ladder.result.total_candidates / ladder_s
    speedup = ladder_cps / full_cps
    benchmark.extra_info["full_candidates_per_sec"] = round(full_cps, 1)
    benchmark.extra_info["ladder_candidates_per_sec"] = round(ladder_cps, 1)
    benchmark.extra_info["ladder_speedup"] = round(speedup, 2)
    bench_records["fidelity_ladder"] = {
        "full_candidates_per_sec": round(full_cps, 1),
        "ladder_candidates_per_sec": round(ladder_cps, 1),
        "speedup": round(speedup, 2),
        "screened_out": screened,
        "rungs": LADDER["rungs"],
    }
    print(
        f"\n[fidelity] full {full_cps:.1f} cand/s, "
        f"3-rung ladder {ladder_cps:.1f} cand/s = {speedup:.2f}x "
        f"({screened}/{total} candidates stopped at a cheap rung)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fidelity ladder only {speedup:.2f}x faster than full-fidelity "
        f"evaluation (gate: {MIN_SPEEDUP}x)"
    )
